//! Cycle counting.
//!
//! The whole simulator is expressed in core clock cycles. [`Cycle`] is a thin
//! newtype over `u64` so latencies and absolute times cannot be confused with
//! other integers, and so saturating arithmetic is applied consistently.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulation time or a duration, in core clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Cycle zero — the beginning of simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// A value used for "never happens": effectively infinite.
    pub const NEVER: Cycle = Cycle(u64::MAX);

    /// Creates a cycle value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating addition of a number of cycles.
    #[inline]
    pub const fn saturating_add(self, delta: u64) -> Self {
        Cycle(self.0.saturating_add(delta))
    }

    /// Returns the number of cycles from `earlier` until `self`, or zero if
    /// `earlier` is later.
    #[inline]
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the maximum of two cycle values.
    #[inline]
    pub fn max_of(self, other: Cycle) -> Cycle {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0.saturating_add(rhs))
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.saturating_add(rhs);
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    fn sub(self, rhs: Cycle) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Cycle::NEVER + 1, Cycle::NEVER);
        assert_eq!(Cycle::ZERO.since(Cycle::new(5)), 0);
        assert_eq!(Cycle::new(10) - Cycle::new(3), 7);
        assert_eq!(Cycle::new(3) - Cycle::new(10), 0);
    }

    #[test]
    fn add_assign_advances() {
        let mut c = Cycle::ZERO;
        c += 5;
        c += 7;
        assert_eq!(c.raw(), 12);
    }

    #[test]
    fn max_of_picks_later() {
        assert_eq!(Cycle::new(4).max_of(Cycle::new(9)), Cycle::new(9));
        assert_eq!(Cycle::new(9).max_of(Cycle::new(4)), Cycle::new(9));
    }
}
