//! Foundational simulation substrate for the MuonTrap reproduction.
//!
//! This crate provides the pieces every other crate in the workspace builds on:
//!
//! * [`addr`] — physical/virtual address newtypes and cache-line arithmetic,
//! * [`config`] — the system configuration mirroring Table 1 of the paper,
//! * [`stats`] — counters, histograms and derived statistics,
//! * [`json`] — a dependency-free JSON tree, parser and writer used by the
//!   experiment session's machine-readable reports (serde is unavailable in
//!   this offline build),
//! * [`fingerprint`] — deterministic 128-bit content fingerprints over JSON
//!   trees and hashable values, the keys of the on-disk result store,
//! * [`rng`] — a small deterministic xorshift RNG used where reproducibility
//!   matters more than statistical quality,
//! * [`cycles`] — the `Cycle` newtype and simple clock bookkeeping.
//!
//! # Example
//!
//! ```
//! use simkit::config::SystemConfig;
//! use simkit::addr::{PhysAddr, LineAddr};
//!
//! let cfg = SystemConfig::paper_default();
//! assert_eq!(cfg.cores, 4);
//! let pa = PhysAddr::new(0x1_2345);
//! let line = LineAddr::from_phys(pa, cfg.line_bytes);
//! assert_eq!(line.base(cfg.line_bytes).raw(), 0x1_2340);
//! ```

#![forbid(unsafe_code)]

pub mod addr;
pub mod config;
pub mod cycles;
pub mod fingerprint;
pub mod json;
pub mod rng;
pub mod stats;
pub mod timeq;

pub use addr::{LineAddr, PhysAddr, VirtAddr};
pub use config::SystemConfig;
pub use cycles::Cycle;
pub use fingerprint::Fingerprint;
pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::SimRng;
pub use stats::{Histogram, StatSet};
