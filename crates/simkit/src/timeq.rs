//! Time-queue primitives for event-driven simulation.
//!
//! The simulator's memory system is built from *timed servers*: components
//! that accept a request at some cycle and promise its completion at a later
//! one. A [`TimedServer`] combines a [`ServiceLaw`] (fixed latency plus an
//! optional bytes-per-cycle transfer term) with an occupancy model — either a
//! pure latency pipe (unlimited concurrency) or a serialized unit that queues
//! requests behind a busy window — and answers each request with a
//! [`Ticket`] naming the completion cycle, or [`Backpressure`] naming the
//! earliest retry cycle when its bounded queue is full.
//!
//! [`EventQueue`] is the companion min-heap of `(Cycle, payload)` pairs that
//! drives the event loop: the out-of-order core keys completion tickets by
//! sequence number, and `System::run` sleeps each core until the earliest
//! entry. Entries may go stale (a squash removes the instruction a ticket
//! names); consumers validate on pop, which keeps the queue write paths
//! O(log n) with no removal support needed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::cycles::Cycle;

/// How long a server takes to process one request: a fixed `latency` plus a
/// size-proportional transfer term. `bytes_per_cycle == 0` means the transfer
/// time is folded into the fixed latency (an infinite-bandwidth law) — the
/// neutral default that reproduces a purely latency-annotated model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceLaw {
    /// Fixed service latency in cycles.
    pub latency: u64,
    /// Transfer bandwidth; 0 disables the transfer term.
    pub bytes_per_cycle: u64,
}

impl ServiceLaw {
    /// A law with only a fixed latency (infinite bandwidth).
    pub const fn fixed(latency: u64) -> Self {
        ServiceLaw {
            latency,
            bytes_per_cycle: 0,
        }
    }

    /// Total service time for a request of `bytes` bytes: the fixed latency
    /// plus the (rounded-up) transfer time.
    pub fn service_time(&self, bytes: u64) -> u64 {
        let transfer = if self.bytes_per_cycle == 0 {
            0
        } else {
            bytes.div_ceil(self.bytes_per_cycle)
        };
        self.latency.saturating_add(transfer)
    }
}

/// A promise that a request completes at `ready_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// The cycle at which the request's data is available.
    pub ready_at: Cycle,
    /// Cycles the request waited in the server's queue before service began.
    pub queue_delay: u64,
}

impl Ticket {
    /// The request's total latency as seen from `now`.
    pub fn latency(&self, now: Cycle) -> u64 {
        self.ready_at.since(now)
    }
}

/// A server refused a request because its queue is full. The request is *not*
/// enqueued; the issuer retries no earlier than `retry_at` (when the oldest
/// in-flight request completes and frees a slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backpressure {
    /// Earliest cycle at which a retry can be accepted.
    pub retry_at: Cycle,
}

/// A timed server: accepts requests, answers with completion [`Ticket`]s.
///
/// Two occupancy models:
/// * **pipe** (`serialized == false`): unlimited concurrency, every request
///   is serviced immediately — a latency-annotated wire. This is the neutral
///   default for components the simulator previously modelled with a bare
///   latency constant (the L2 lookup path, the filter-cache fill path).
/// * **serialized** (`serialized == true`): one request at a time; a request
///   arriving while the server is busy starts when the previous one finishes
///   (a DRAM bank).
///
/// Either way a bounded queue (`queue_capacity > 0`) makes the server refuse
/// requests with [`Backpressure`] once `queue_capacity` requests are in
/// flight; completed requests free their slots implicitly with time.
#[derive(Debug, Clone)]
pub struct TimedServer {
    law: ServiceLaw,
    serialized: bool,
    /// In-flight completion times, oldest first; drained lazily as time
    /// passes. Only tracked when a queue bound is set (the unbounded case
    /// needs just `busy_until`).
    in_flight: VecDeque<Cycle>,
    /// 0 = unbounded.
    queue_capacity: usize,
    /// For serialized servers: when the unit frees up.
    busy_until: Cycle,
}

impl TimedServer {
    /// An unlimited-concurrency, unbounded-queue server: a pure latency pipe.
    pub fn pipe(law: ServiceLaw) -> Self {
        TimedServer {
            law,
            serialized: false,
            in_flight: VecDeque::new(),
            queue_capacity: 0,
            busy_until: Cycle::ZERO,
        }
    }

    /// A one-request-at-a-time server with an unbounded queue.
    pub fn serialized(law: ServiceLaw) -> Self {
        TimedServer {
            serialized: true,
            ..Self::pipe(law)
        }
    }

    /// Bounds the number of in-flight requests; further requests get
    /// [`Backpressure`] until a slot frees.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// The server's service law.
    pub fn law(&self) -> ServiceLaw {
        self.law
    }

    /// When a serialized server next becomes free (`Cycle::ZERO` if idle or
    /// not serialized).
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Submits a request of `bytes` bytes at `now` under the server's own
    /// law.
    pub fn request(&mut self, now: Cycle, bytes: u64) -> Result<Ticket, Backpressure> {
        let service = self.law.service_time(bytes);
        self.request_serviced(now, service)
    }

    /// Submits a request whose service time is supplied by the caller (plus
    /// the law's transfer term for `bytes`). DRAM banks use this: the fixed
    /// part depends on whether the open row matches.
    pub fn request_with_latency(
        &mut self,
        now: Cycle,
        latency: u64,
        bytes: u64,
    ) -> Result<Ticket, Backpressure> {
        let transfer = ServiceLaw {
            latency: 0,
            bytes_per_cycle: self.law.bytes_per_cycle,
        }
        .service_time(bytes);
        self.request_serviced(now, latency.saturating_add(transfer))
    }

    fn request_serviced(&mut self, now: Cycle, service: u64) -> Result<Ticket, Backpressure> {
        if self.queue_capacity > 0 {
            // Free the slots of requests that have completed by `now`.
            while self.in_flight.front().is_some_and(|&t| t <= now) {
                self.in_flight.pop_front();
            }
            if self.in_flight.len() >= self.queue_capacity {
                let oldest = *self.in_flight.front().expect("capacity > 0");
                return Err(Backpressure { retry_at: oldest });
            }
        }
        let start = if self.serialized {
            now.max_of(self.busy_until)
        } else {
            now
        };
        let ready_at = start.saturating_add(service);
        if self.serialized {
            self.busy_until = ready_at;
        }
        if self.queue_capacity > 0 {
            self.in_flight.push_back(ready_at);
        }
        Ok(Ticket {
            ready_at,
            queue_delay: start.since(now),
        })
    }

    /// Forgets all in-flight work (simulation reset between cells).
    pub fn clear(&mut self) {
        self.in_flight.clear();
        self.busy_until = Cycle::ZERO;
    }
}

/// A min-heap of `(Cycle, payload)` events, earliest first; ties pop in
/// payload order (so completion tickets keyed by sequence number pop
/// oldest-instruction-first within a cycle).
///
/// There is no removal: consumers push freely and validate on pop, treating
/// entries whose payload no longer names live work as stale. [`peek`] may
/// therefore report an earlier wake than the true next event — waking early
/// is harmless (the consumer pops the stale entry and goes back to sleep).
///
/// [`peek`]: EventQueue::peek
#[derive(Debug, Clone, Default)]
pub struct EventQueue<T: Ord + Copy> {
    heap: BinaryHeap<Reverse<(Cycle, T)>>,
}

impl<T: Ord + Copy> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Schedules `payload` at `at`.
    #[inline]
    pub fn push(&mut self, at: Cycle, payload: T) {
        self.heap.push(Reverse((at, payload)));
    }

    /// The earliest scheduled cycle, or `Cycle::NEVER` when empty. May be
    /// stale (see the type docs) — never later than the true next event.
    #[inline]
    pub fn peek(&self) -> Cycle {
        self.heap.peek().map_or(Cycle::NEVER, |Reverse((t, _))| *t)
    }

    /// Pops the earliest event if it is due at or before `now`.
    #[inline]
    pub fn pop_due(&mut self, now: Cycle) -> Option<(Cycle, T)> {
        match self.heap.peek() {
            Some(Reverse((t, _))) if *t <= now => {
                let Reverse(entry) = self.heap.pop().expect("peeked");
                Some(entry)
            }
            _ => None,
        }
    }

    /// Number of scheduled (possibly stale) events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_law_folds_or_charges_transfer() {
        let folded = ServiceLaw::fixed(30);
        assert_eq!(folded.service_time(64), 30);
        let law = ServiceLaw {
            latency: 30,
            bytes_per_cycle: 16,
        };
        assert_eq!(law.service_time(64), 34);
        assert_eq!(law.service_time(65), 35, "transfer rounds up");
    }

    #[test]
    fn pipe_server_is_a_latency_wire() {
        let mut s = TimedServer::pipe(ServiceLaw::fixed(12));
        let a = s.request(Cycle::new(100), 64).unwrap();
        let b = s.request(Cycle::new(100), 64).unwrap();
        assert_eq!(a.ready_at, Cycle::new(112));
        assert_eq!(b.ready_at, Cycle::new(112), "no serialization");
        assert_eq!(a.queue_delay, 0);
    }

    #[test]
    fn serialized_server_queues_requests() {
        let mut s = TimedServer::serialized(ServiceLaw::fixed(10));
        let a = s.request(Cycle::new(5), 0).unwrap();
        assert_eq!(a.ready_at, Cycle::new(15));
        let b = s.request(Cycle::new(7), 0).unwrap();
        assert_eq!(b.ready_at, Cycle::new(25), "starts after a");
        assert_eq!(b.queue_delay, 8);
        assert_eq!(b.latency(Cycle::new(7)), 18);
    }

    #[test]
    fn bounded_queue_pushes_back() {
        let mut s = TimedServer::serialized(ServiceLaw::fixed(10)).with_queue_capacity(2);
        let a = s.request(Cycle::new(0), 0).unwrap();
        s.request(Cycle::new(0), 0).unwrap();
        let refused = s.request(Cycle::new(0), 0).unwrap_err();
        assert_eq!(refused.retry_at, a.ready_at, "retry when the oldest frees");
        // After the first completes, a slot frees.
        let c = s.request(a.ready_at, 0).unwrap();
        assert_eq!(c.ready_at, Cycle::new(30));
    }

    #[test]
    fn event_queue_pops_in_time_then_payload_order() {
        let mut q: EventQueue<u64> = EventQueue::new();
        q.push(Cycle::new(9), 2);
        q.push(Cycle::new(3), 7);
        q.push(Cycle::new(9), 1);
        assert_eq!(q.peek(), Cycle::new(3));
        assert_eq!(q.pop_due(Cycle::new(10)), Some((Cycle::new(3), 7)));
        assert_eq!(q.pop_due(Cycle::new(10)), Some((Cycle::new(9), 1)));
        assert_eq!(q.pop_due(Cycle::new(10)), Some((Cycle::new(9), 2)));
        assert_eq!(q.pop_due(Cycle::new(10)), None);
        assert_eq!(q.peek(), Cycle::NEVER);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(Cycle::new(50), 1);
        assert_eq!(q.pop_due(Cycle::new(49)), None);
        assert_eq!(q.pop_due(Cycle::new(50)), Some((Cycle::new(50), 1)));
    }
}
