//! Deterministic content fingerprints for experiment memoization.
//!
//! The on-disk result store (`simsys::store`) keys every simulation result by
//! a stable fingerprint of its inputs: the workload's programs, the machine
//! and defense configuration, and a simulator version salt. This module
//! provides the two hashing entry points it builds on, with no external
//! dependencies (the build is offline):
//!
//! * [`of_json`] — a fingerprint over a [`Json`] value tree. Every node is
//!   hashed with a type tag and an explicit length, so structurally distinct
//!   trees cannot collide by concatenation ambiguity, and object key *order*
//!   is significant (our [`Json`] objects preserve insertion order and every
//!   `ToJson` implementation emits fields in a fixed order).
//! * [`of_hash`] — a fingerprint over any `#[derive(Hash)]` value, fed
//!   through [`Hasher128`]. Used where a value (e.g. a workload's µISA
//!   programs) has a derived `Hash` but no JSON form.
//!
//! Both are backed by [`Hasher128`], a 128-bit FNV-1a variant. The output is
//! deterministic across processes and runs of the same build — that is the
//! property the store needs; it is **not** a cryptographic hash and offers no
//! collision resistance against adversarial inputs. Integer widths are
//! canonicalised to little-endian 64-bit before hashing so the fingerprint
//! does not depend on the host's `usize` width.
//!
//! # Example
//!
//! ```
//! use simkit::fingerprint::{self, Fingerprint};
//! use simkit::json::Json;
//!
//! let a = fingerprint::of_json(&Json::obj([("cycles", Json::UInt(42))]));
//! let b = fingerprint::of_json(&Json::obj([("cycles", Json::UInt(42))]));
//! let c = fingerprint::of_json(&Json::obj([("cycles", Json::UInt(43))]));
//! assert_eq!(a, b);
//! assert_ne!(a, c);
//! let hex = a.to_hex();
//! assert_eq!(Fingerprint::parse_hex(&hex), Some(a));
//! ```

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::json::Json;

/// A 128-bit content fingerprint, printable as 32 lower-case hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The fingerprint as 32 lower-case hex digits (the store's file names).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`to_hex`](Self::to_hex) form back. Returns `None` unless
    /// the input is exactly 32 hex digits.
    pub fn parse_hex(text: &str) -> Option<Fingerprint> {
        if text.len() != 32 || !text.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A streaming 128-bit FNV-1a hasher.
///
/// Implements [`std::hash::Hasher`] so `#[derive(Hash)]` values can feed it;
/// integer writes are canonicalised to little-endian 64-bit so the result is
/// platform-independent. [`finish`](Hasher::finish) folds the state to 64
/// bits; [`finish128`](Self::finish128) returns the full [`Fingerprint`].
#[derive(Debug, Clone)]
pub struct Hasher128 {
    state: u128,
}

impl Hasher128 {
    /// A hasher in the FNV-1a initial state.
    pub fn new() -> Self {
        Hasher128 {
            state: FNV128_OFFSET,
        }
    }

    /// The full 128-bit digest of everything written so far.
    pub fn finish128(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for Hasher128 {
    fn default() -> Self {
        Hasher128::new()
    }
}

impl Hasher for Hasher128 {
    fn finish(&self) -> u64 {
        (self.state ^ (self.state >> 64)) as u64
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    // Every integer write is pinned to its little-endian form (and usize to
    // 64 bits) so fingerprints match across platforms; the std defaults use
    // native-endian bytes, which would silently fork a store shared between
    // little- and big-endian hosts.

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        // usize width varies by platform; hash the canonical 64-bit form.
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write(&i.to_le_bytes());
    }

    fn write_i16(&mut self, i: i16) {
        self.write(&i.to_le_bytes());
    }

    fn write_i32(&mut self, i: i32) {
        self.write(&i.to_le_bytes());
    }

    fn write_i64(&mut self, i: i64) {
        self.write(&i.to_le_bytes());
    }

    fn write_i128(&mut self, i: i128) {
        self.write(&i.to_le_bytes());
    }

    fn write_isize(&mut self, i: isize) {
        self.write_i64(i as i64);
    }
}

/// Fingerprints any hashable value through [`Hasher128`].
///
/// Deterministic for derived `Hash` implementations, which feed fields in
/// declaration order. Two values of *different types* may collide if they
/// hash identical byte streams; include a disambiguating tag in the value
/// when that matters.
pub fn of_hash<T: Hash + ?Sized>(value: &T) -> Fingerprint {
    let mut hasher = Hasher128::new();
    value.hash(&mut hasher);
    hasher.finish128()
}

/// Fingerprints a [`Json`] value tree.
///
/// Type tags and explicit lengths make the encoding prefix-free, so nested
/// structures cannot collide by reassociation (`["ab"]` vs `["a","b"]`).
/// Object key order is significant; [`Json`] objects preserve insertion
/// order, and `ToJson` implementations emit fields in a fixed order, so equal
/// values always produce equal fingerprints.
pub fn of_json(json: &Json) -> Fingerprint {
    let mut hasher = Hasher128::new();
    hash_json(&mut hasher, json);
    hasher.finish128()
}

fn hash_json(h: &mut Hasher128, json: &Json) {
    match json {
        Json::Null => h.write(&[0]),
        Json::Bool(b) => h.write(&[1, u8::from(*b)]),
        Json::UInt(v) => {
            h.write(&[2]);
            h.write(&v.to_le_bytes());
        }
        Json::Int(v) => {
            h.write(&[3]);
            h.write(&v.to_le_bytes());
        }
        Json::Num(v) => {
            h.write(&[4]);
            h.write(&v.to_bits().to_le_bytes());
        }
        Json::Str(s) => {
            h.write(&[5]);
            h.write(&(s.len() as u64).to_le_bytes());
            h.write(s.as_bytes());
        }
        Json::Arr(items) => {
            h.write(&[6]);
            h.write(&(items.len() as u64).to_le_bytes());
            for item in items {
                hash_json(h, item);
            }
        }
        Json::Obj(pairs) => {
            h.write(&[7]);
            h.write(&(pairs.len() as u64).to_le_bytes());
            for (key, value) in pairs {
                h.write(&(key.len() as u64).to_le_bytes());
                h.write(key.as_bytes());
                hash_json(h, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn equal_trees_fingerprint_equal_and_unequal_differ() {
        let doc = r#"{"workload": "mcf", "cycles": 12345, "stats": {"ipc": 0.75}}"#;
        let a = of_json(&json::parse(doc).unwrap());
        let b = of_json(&json::parse(doc).unwrap());
        assert_eq!(a, b);
        let c = of_json(&json::parse(doc.replace("12345", "12346").as_str()).unwrap());
        assert_ne!(a, c);
    }

    #[test]
    fn known_answer_guards_the_algorithm() {
        // Golden values: if the encoding or the FNV constants ever change,
        // every store entry on disk silently becomes unreachable. This test
        // makes such a change loud instead.
        assert_eq!(
            of_json(&Json::Null).to_hex(),
            "d228cb69101a8caf78912b704e4a147f"
        );
        assert_eq!(
            of_json(&Json::obj([("cycles", Json::UInt(42))])).to_hex(),
            "c64a022f75cddc858d789dedc28b3472"
        );
    }

    #[test]
    fn structure_is_unambiguous() {
        // Concatenation ambiguity: ["ab"] must differ from ["a", "b"].
        let joined = Json::Arr(vec![Json::Str("ab".into())]);
        let split = Json::Arr(vec![Json::Str("a".into()), Json::Str("b".into())]);
        assert_ne!(of_json(&joined), of_json(&split));
        // Nesting: [[1], 2] must differ from [1, [2]] and from [1, 2].
        let a = Json::Arr(vec![Json::Arr(vec![Json::UInt(1)]), Json::UInt(2)]);
        let b = Json::Arr(vec![Json::UInt(1), Json::Arr(vec![Json::UInt(2)])]);
        let c = Json::Arr(vec![Json::UInt(1), Json::UInt(2)]);
        assert_ne!(of_json(&a), of_json(&b));
        assert_ne!(of_json(&a), of_json(&c));
        // Type tags: 1 as UInt, Int-like float and string all differ.
        assert_ne!(of_json(&Json::UInt(1)), of_json(&Json::Num(1.0)));
        assert_ne!(of_json(&Json::UInt(1)), of_json(&Json::Str("1".into())));
    }

    #[test]
    fn object_key_order_is_significant() {
        let ab = json::parse(r#"{"a": 1, "b": 2}"#).unwrap();
        let ba = json::parse(r#"{"b": 2, "a": 1}"#).unwrap();
        assert_ne!(of_json(&ab), of_json(&ba));
    }

    #[test]
    fn hash_fingerprints_are_deterministic() {
        #[derive(Hash)]
        struct Probe {
            name: String,
            sizes: Vec<usize>,
            on: bool,
        }
        let probe = || Probe {
            name: "mcf".into(),
            sizes: vec![64, 2048],
            on: true,
        };
        assert_eq!(of_hash(&probe()), of_hash(&probe()));
        let mut other = probe();
        other.sizes[1] = 4096;
        assert_ne!(of_hash(&probe()), of_hash(&other));
    }

    #[test]
    fn hex_round_trips_and_rejects_malformed_input() {
        let fp = of_json(&Json::Str("round trip".into()));
        assert_eq!(Fingerprint::parse_hex(&fp.to_hex()), Some(fp));
        assert_eq!(fp.to_hex().len(), 32);
        assert_eq!(fp.to_hex(), fp.to_string());
        for bad in ["", "abc", &"0".repeat(31), &"g".repeat(32), &"0".repeat(33)] {
            assert_eq!(Fingerprint::parse_hex(bad), None, "accepted {bad:?}");
        }
        // Leading zeros survive the round trip.
        let small = Fingerprint(7);
        assert_eq!(Fingerprint::parse_hex(&small.to_hex()), Some(small));
    }

    #[test]
    fn folded_64_bit_finish_matches_the_128_bit_state() {
        let mut h = Hasher128::new();
        h.write(b"fold");
        let full = h.finish128().0;
        assert_eq!(h.finish(), (full ^ (full >> 64)) as u64);
    }
}
