//! A minimal, dependency-free JSON layer.
//!
//! The experiment session serialises [`RunReport`](../../simsys) structures to
//! JSON for the `--json` figure binaries. This workspace builds with no
//! registry access, so `serde`/`serde_json` cannot be used; this module is the
//! gated replacement: a [`Json`] value tree, a strict recursive-descent
//! parser, a writer, and the [`ToJson`]/[`FromJson`] conversion traits the
//! rest of the workspace implements. If the workspace ever gains network
//! access, swapping this for serde only requires replacing the trait impls —
//! the wire format is plain JSON either way.
//!
//! Design notes:
//!
//! * Objects preserve insertion order (a `Vec` of pairs, not a map), so
//!   serialisation is deterministic and reports diff cleanly.
//! * Integers are kept separate from floats ([`Json::UInt`]/[`Json::Int`] vs
//!   [`Json::Num`]) so `u64` counters round-trip exactly.
//! * Floats are written with Rust's shortest round-trip formatting, so an
//!   `f64` survives a serialise/parse cycle bit-for-bit (NaN/infinite values
//!   are rejected at write time — JSON cannot represent them).

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the common case for counters and cycle counts).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises to a compact JSON string.
    ///
    /// # Panics
    /// Panics if the tree contains a NaN or infinite number; JSON has no
    /// representation for them and silently writing `null` would break the
    /// round-trip guarantee.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises to an indented, human-readable JSON string.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                assert!(
                    v.is_finite(),
                    "cannot serialise non-finite number {v} to JSON"
                );
                // `{:?}` is Rust's shortest representation that parses back to
                // the same bits; force a decimal point so the value re-parses
                // as a float rather than an integer.
                let text = format!("{v:?}");
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, depth + 1);
                });
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error produced when parsing or decoding JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset of the error in the input (`None` for decode errors).
    pub offset: Option<usize>,
}

impl JsonError {
    /// Creates a decode (shape-mismatch) error.
    pub fn decode(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }

    fn parse(message: impl Into<String>, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// Convenience for "expected field X" decode errors.
    pub fn missing(field: &str) -> Self {
        JsonError::decode(format!("missing or mistyped field `{field}`"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "JSON parse error at byte {at}: {}", self.message),
            None => write!(f, "JSON decode error: {}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document. Trailing non-whitespace input is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::parse(
            "trailing characters after document",
            p.pos,
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::parse(
                format!("expected `{}`", b as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::parse(format!("expected `{text}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(JsonError::parse(
                format!("unexpected `{}`", c as char),
                self.pos,
            )),
            None => Err(JsonError::parse("unexpected end of input", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::parse("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::parse("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError::parse("invalid \\u escape", self.pos))?;
                            // Surrogate pairs are not needed for our reports;
                            // reject them rather than mis-decode.
                            let c = char::from_u32(hex).ok_or_else(|| {
                                JsonError::parse("\\u escape is not a scalar value", self.pos)
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::parse("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so byte
                    // boundaries are guaranteed valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::parse("invalid UTF-8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(JsonError::parse("control character in string", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::parse("invalid number", start))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::parse(format!("invalid number `{text}`"), start))
    }
}

/// Conversion of a value into a [`Json`] tree.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Reconstruction of a value from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Rebuilds the value, or explains which field failed.
    ///
    /// # Errors
    /// Returns a [`JsonError`] naming the missing or mistyped field.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl ToJson for crate::stats::StatSet {
    fn to_json(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .iter_counters()
            .map(|(k, v)| (k.to_string(), Json::UInt(v)))
            .collect();
        let scalars: Vec<(String, Json)> = self
            .iter_scalars()
            .map(|(k, v)| (k.to_string(), Json::Num(v)))
            .collect();
        Json::obj([
            ("counters", Json::Obj(counters)),
            ("scalars", Json::Obj(scalars)),
        ])
    }
}

impl FromJson for crate::stats::StatSet {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let mut stats = crate::stats::StatSet::new();
        let counters = match json.get("counters") {
            Some(Json::Obj(pairs)) => pairs,
            _ => return Err(JsonError::missing("counters")),
        };
        for (name, value) in counters {
            stats.add(
                name,
                value.as_u64().ok_or_else(|| JsonError::missing(name))?,
            );
        }
        let scalars = match json.get("scalars") {
            Some(Json::Obj(pairs)) => pairs,
            _ => return Err(JsonError::missing("scalars")),
        };
        for (name, value) in scalars {
            stats.set_scalar(
                name,
                value.as_f64().ok_or_else(|| JsonError::missing(name))?,
            );
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatSet;

    #[test]
    fn scalars_round_trip() {
        for input in ["null", "true", "false", "0", "42", "-17", "3.5", "1e3"] {
            let v = parse(input).unwrap();
            let again = parse(&v.to_string_compact()).unwrap();
            assert_eq!(v, again, "round-trip failed for {input}");
        }
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("-17").unwrap(), Json::Int(-17));
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1234.5678e-12,
            2.0_f64.powi(60),
        ] {
            let text = Json::Num(v).to_string_compact();
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn large_u64_round_trips_exactly() {
        let v = u64::MAX - 3;
        let parsed = parse(&Json::UInt(v).to_string_compact()).unwrap();
        assert_eq!(parsed.as_u64(), Some(v));
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let original = "a \"quoted\" string\nwith\ttabs, unicode µops and \\ slashes";
        let text = Json::Str(original.to_string()).to_string_compact();
        assert_eq!(parse(&text).unwrap().as_str(), Some(original));
        assert_eq!(parse(r#""µops""#).unwrap().as_str(), Some("µops"));
    }

    #[test]
    fn objects_preserve_order_and_lookup_works() {
        let v = parse(r#"{"zeta": 1, "alpha": [1, 2, {"x": true}], "mid": null}"#).unwrap();
        let Json::Obj(pairs) = &v else {
            panic!("expected object")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["zeta", "alpha", "mid"]);
        assert_eq!(v.get("zeta").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("alpha").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": false}}"#).unwrap();
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn statset_round_trips() {
        let mut stats = StatSet::new();
        stats.add("cycles", 12345);
        stats.add("muontrap.l0d_hits", u64::MAX / 2);
        stats.set_scalar("ipc", 1.0 / 3.0);
        let json = stats.to_json();
        let back = StatSet::from_json(&parse(&json.to_string_compact()).unwrap()).unwrap();
        assert_eq!(back, stats);
    }
}
