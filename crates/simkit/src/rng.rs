//! Deterministic pseudo-random number generation.
//!
//! Workload generation and replacement-policy tie breaking need randomness that
//! is reproducible run-to-run so that experiments are comparable. [`SimRng`] is
//! a small xorshift64* generator: fast, seedable, and with no external state.

/// A deterministic xorshift64* pseudo-random number generator.
///
/// # Example
///
/// ```
/// use simkit::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. A zero seed is mapped to a fixed
    /// non-zero constant because xorshift cannot leave the all-zero state.
    pub fn seed_from(seed: u64) -> Self {
        let state = if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        };
        SimRng { state }
    }

    /// Returns the next 64-bit pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Returns a pseudo-random value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Returns a pseudo-random value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "lo must not exceed hi");
        lo + self.below(hi - lo + 1)
    }

    /// Returns `true` with probability `numer / denom`.
    ///
    /// # Panics
    /// Panics if `denom` is zero.
    pub fn chance(&mut self, numer: u64, denom: u64) -> bool {
        self.below(denom) < numer
    }

    /// Returns a pseudo-random `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.is_empty() {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl Default for SimRng {
    fn default() -> Self {
        SimRng::seed_from(0x5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should differ");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn in_range_is_inclusive() {
        let mut rng = SimRng::seed_from(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.in_range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::seed_from(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SimRng::seed_from(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
