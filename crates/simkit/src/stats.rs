//! Counters, histograms and derived statistics.
//!
//! Every simulated component registers its counters in a [`StatSet`]. The
//! experiment harnesses then read named counters (cycle counts, hit rates,
//! invalidate-broadcast counts, ...) to build the paper's figures.

use std::collections::BTreeMap;
use std::fmt;

/// A set of named integer counters and scalar values.
///
/// Counters are created lazily on first use and kept in sorted order so that
/// reports are stable across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatSet {
    counters: BTreeMap<String, u64>,
    scalars: BTreeMap<String, f64>,
}

impl StatSet {
    /// Creates an empty statistics set.
    pub fn new() -> Self {
        StatSet::default()
    }

    /// Adds `delta` to the counter `name`, creating it if needed.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments the counter `name` by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Returns the value of counter `name`, or zero if it was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the scalar statistic `name` to `value`.
    pub fn set_scalar(&mut self, name: &str, value: f64) {
        self.scalars.insert(name.to_owned(), value);
    }

    /// Returns the scalar statistic `name`, or `None`.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.scalars.get(name).copied()
    }

    /// Returns the ratio `numer / denom` of two counters, or zero if the
    /// denominator counter is zero.
    pub fn ratio(&self, numer: &str, denom: &str) -> f64 {
        let d = self.counter(denom);
        if d == 0 {
            0.0
        } else {
            self.counter(numer) as f64 / d as f64
        }
    }

    /// Iterates over all counters in name order.
    pub fn iter_counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all scalar statistics in name order.
    pub fn iter_scalars(&self) -> impl Iterator<Item = (&str, f64)> {
        self.scalars.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another statistics set into this one, summing counters and
    /// overwriting scalars.
    pub fn merge(&mut self, other: &StatSet) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.scalars {
            self.scalars.insert(k.clone(), *v);
        }
    }

    /// Removes all counters and scalars.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.scalars.clear();
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k}: {v}")?;
        }
        for (k, v) in &self.scalars {
            writeln!(f, "{k}: {v:.6}")?;
        }
        Ok(())
    }
}

/// A fixed-bucket histogram of integer samples, used for latency distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `num_buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    /// Panics if `bucket_width` or `num_buckets` is zero.
    pub fn new(bucket_width: u64, num_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(num_buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            buckets: vec![0; num_buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded samples (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of samples that fell past the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bucket `idx` (zero if out of range).
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }
}

/// Computes the geometric mean of a slice of positive values.
///
/// Values that are not finite and positive are ignored; an empty input yields 1.0.
/// This mirrors how the paper reports "geomean" bars in figures 3 and 4.
pub fn geometric_mean(values: &[f64]) -> f64 {
    let usable: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if usable.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = usable.iter().map(|v| v.ln()).sum();
    (log_sum / usable.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = StatSet::new();
        s.bump("loads");
        s.add("loads", 4);
        assert_eq!(s.counter("loads"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut s = StatSet::new();
        s.add("hits", 10);
        assert_eq!(s.ratio("hits", "accesses"), 0.0);
        s.add("accesses", 20);
        assert!((s.ratio("hits", "accesses") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = StatSet::new();
        a.add("x", 3);
        let mut b = StatSet::new();
        b.add("x", 4);
        b.add("y", 1);
        b.set_scalar("ipc", 1.5);
        a.merge(&b);
        assert_eq!(a.counter("x"), 7);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.scalar("ipc"), Some(1.5));
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new(10, 4);
        for v in [1, 5, 15, 25, 35, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.max(), 1000);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn geometric_mean_of_known_values() {
        let g = geometric_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
        // Non-positive values are skipped rather than poisoning the result.
        let g = geometric_mean(&[0.0, 2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_lists_counters() {
        let mut s = StatSet::new();
        s.add("cycles", 100);
        s.set_scalar("ipc", 2.0);
        let text = format!("{s}");
        assert!(text.contains("cycles: 100"));
        assert!(text.contains("ipc"));
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = StatSet::new();
        s.add("cycles", 100);
        s.set_scalar("ipc", 2.0);
        s.clear();
        assert_eq!(s.counter("cycles"), 0);
        assert_eq!(s.scalar("ipc"), None);
    }
}
