//! Events the core reports to the system layer.

/// An architecturally visible event produced when an instruction commits.
///
/// The core itself gives these no semantics beyond reporting them; the OS
/// model in `simsys` reacts (performing domain switches, scheduling, halting
/// threads) and invokes the memory model's domain-switch hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreEvent {
    /// A syscall instruction committed with the given code.
    Syscall(u16),
    /// A sandbox-entry marker committed.
    SandboxEnter,
    /// A sandbox-exit marker committed.
    SandboxExit,
    /// The running thread halted.
    Halted,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable() {
        assert_eq!(CoreEvent::Syscall(3), CoreEvent::Syscall(3));
        assert_ne!(CoreEvent::Syscall(3), CoreEvent::Syscall(4));
        assert_ne!(CoreEvent::SandboxEnter, CoreEvent::SandboxExit);
    }
}
