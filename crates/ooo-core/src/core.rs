//! The out-of-order pipeline.
//!
//! [`OooCore`] is an execute-at-issue out-of-order timing model. Instructions
//! are fetched along the predicted path, dispatched into a reorder buffer,
//! executed once their operands are available and a functional unit is free,
//! and retired in program order. Wrong-path instructions genuinely execute —
//! including their memory accesses, which go through the pluggable
//! [`MemoryModel`] — and are squashed when the mispredicted branch resolves.
//! Stores update functional memory only at commit, so architectural state is
//! always correct; the speculative damage the paper studies is confined to the
//! cache side, exactly as on real hardware.
//!
//! # The hot loop
//!
//! [`tick`](OooCore::tick) is the innermost loop of every experiment, so it is
//! written to be allocation-free and to avoid re-deriving anything a cheap
//! incremental structure can carry (see ARCHITECTURE.md § "The hot path"):
//!
//! * committed events go into a **caller-provided buffer** instead of a fresh
//!   `Vec` per cycle;
//! * each ROB entry records **dispatch-time producer links** (the sequence
//!   number of the in-flight producer of each source register, captured from a
//!   register scoreboard), so operand lookup is O(1) instead of a backward
//!   ROB scan;
//! * a **done-prefix counter** tracks how many entries at the head are
//!   finished, so commit-readiness and the `rdcycle` "all older done" gate are
//!   O(1);
//! * **in-flight load/store counters** and ordered sequence queues of stores
//!   and unresolved branches replace the per-cycle `rob.iter().filter()`
//!   scans of the fetch, disambiguation and speculation-visibility paths;
//! * a tick that did no work reports itself [`quiescent`](OooCore::quiescent)
//!   and can name the [`next_wake`](OooCore::next_wake) cycle, which lets the
//!   driving loop **fast-forward over idle cycles** (crediting them via
//!   [`skip_idle_cycles`](OooCore::skip_idle_cycles)) with bit-identical
//!   statistics — see `tests/hotpath_golden.rs` for the equivalence proof.

use std::collections::VecDeque;
use std::sync::OnceLock;

use simkit::addr::VirtAddr;
use simkit::config::{PipelineConfig, SystemConfig};
use simkit::cycles::Cycle;
use simkit::stats::StatSet;
use simkit::timeq::EventQueue;

use uarch_isa::inst::{eval_alu, eval_branch, eval_fpu, InstClass, Instruction, MemWidth};
use uarch_isa::prog::INST_BYTES;
use uarch_isa::reg::{Reg, NUM_REGS};

use crate::branch::{BranchPredictor, BranchUpdate};
use crate::context::ThreadContext;
use crate::events::CoreEvent;
use crate::memmodel::{MemAccessCtx, MemOutcome, MemoryModel};

/// Whether `MUONTRAP_NAIVE_LOOP` asks for the naive one-tick-per-cycle loop
/// (no idle-cycle fast-forward). Read once per process; the result is cached.
/// The simulated behaviour is bit-identical either way — the switch exists so
/// the `perf` binary can measure the speedup and tests can cross-check.
pub fn naive_loop_requested() -> bool {
    static NAIVE: OnceLock<bool> = OnceLock::new();
    *NAIVE.get_or_init(|| std::env::var_os("MUONTRAP_NAIVE_LOOP").is_some_and(|v| v != "0"))
}

/// Sentinel for "no in-flight producer: read the architectural register".
const NO_PRODUCER: u64 = u64::MAX;

/// Execution status of a reorder-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Dispatched, waiting for operands or a functional unit.
    Waiting,
    /// Executing; the result is available at the contained cycle.
    Executing(Cycle),
    /// Finished executing.
    Done,
}

/// One reorder-buffer entry.
#[derive(Debug, Clone)]
#[allow(dead_code)] // `predicted_taken` is kept for debugging and future recovery logic
struct RobEntry {
    seq: u64,
    pc: usize,
    inst: Instruction,
    status: Status,
    result: Option<u64>,
    /// Sequence numbers of the youngest older producer of each source
    /// register, captured from the scoreboard at dispatch ([`NO_PRODUCER`]
    /// means the architectural register file). In-order commit guarantees the
    /// link stays correct for the entry's whole life: the linked producer
    /// either still sits in the ROB or has committed its result to the
    /// register file, and a squash that removes a producer removes every
    /// (younger) consumer with it.
    src_producers: [u64; 2],
    /// Computed virtual address for memory operations.
    mem_addr: Option<VirtAddr>,
    /// Value to be stored (for stores/atomics), captured at execute.
    store_data: Option<u64>,
    /// The memory model asked for this access to be retried later.
    mem_retry: bool,
    /// Whether the load's value was forwarded from an older in-flight store.
    forwarded: bool,
    /// Fetch-time prediction: the instruction index fetched after this one.
    predicted_next: usize,
    /// Fetch-time direction prediction for conditional branches.
    predicted_taken: bool,
    /// Resolved actual next PC (valid once `Done` for control flow).
    actual_next: usize,
}

impl RobEntry {
    fn is_done(&self) -> bool {
        matches!(self.status, Status::Done)
    }

    fn is_memory(&self) -> bool {
        self.inst.class().is_memory()
    }

    fn is_load(&self) -> bool {
        matches!(self.inst.class(), InstClass::Load | InstClass::Atomic)
    }

    fn is_store(&self) -> bool {
        matches!(self.inst.class(), InstClass::Store | InstClass::Atomic)
    }

    fn is_branch(&self) -> bool {
        self.inst.class().is_control()
    }
}

/// Statistics accumulated by one core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Cycles this core has been ticked (idle cycles skipped by the
    /// fast-forward loop are credited here, so the count is identical to the
    /// naive loop's).
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches (conditional only).
    pub branches: u64,
    /// Mispredicted branches (of any kind) that caused a squash.
    pub mispredictions: u64,
    /// Instructions squashed from the ROB.
    pub squashed: u64,
    /// Loads that were issued speculatively and later squashed.
    pub squashed_loads: u64,
    /// Accesses the memory model asked to retry non-speculatively.
    pub mem_retries: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Converts the statistics into a generic [`StatSet`].
    pub fn to_stat_set(&self, prefix: &str) -> StatSet {
        let mut s = StatSet::new();
        s.add(&format!("{prefix}.cycles"), self.cycles);
        s.add(&format!("{prefix}.committed"), self.committed);
        s.add(&format!("{prefix}.loads"), self.loads);
        s.add(&format!("{prefix}.stores"), self.stores);
        s.add(&format!("{prefix}.branches"), self.branches);
        s.add(&format!("{prefix}.mispredictions"), self.mispredictions);
        s.add(&format!("{prefix}.squashed"), self.squashed);
        s.add(&format!("{prefix}.squashed_loads"), self.squashed_loads);
        s.add(&format!("{prefix}.mem_retries"), self.mem_retries);
        s.set_scalar(&format!("{prefix}.ipc"), self.ipc());
        s
    }
}

/// The out-of-order core.
pub struct OooCore {
    core_id: usize,
    pipeline: PipelineConfig,
    predictor: BranchPredictor,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    thread: Option<ThreadContext>,
    /// Speculative fetch program counter (instruction index).
    fetch_pc: usize,
    /// Front end is refilling until this cycle (misprediction or I-miss).
    fetch_stalled_until: Cycle,
    /// Fetch stops after a halt or running off the program.
    fetch_halted: bool,
    /// Last instruction-cache line fetched, to charge I-fetch once per line.
    last_fetch_line: Option<u64>,
    /// Commit is stalled until this cycle (memory model commit charges).
    commit_stalled_until: Cycle,
    halted: bool,
    stats: CoreStats,

    // --- incremental hot-loop structures --------------------------------
    /// Length of the contiguous `Done` prefix at the ROB head: the head
    /// `done_prefix` entries are finished. O(1) commit-readiness and the
    /// `rdcycle` "every older instruction done" gate.
    done_prefix: usize,
    /// Register scoreboard: for each architectural register, the sequence
    /// number of its youngest in-flight producer ([`NO_PRODUCER`] if the
    /// committed register file holds the current value).
    reg_producer: [u64; NUM_REGS],
    /// In-flight loads (atomics count), maintained at dispatch/commit/squash.
    loads_in_flight: usize,
    /// In-flight stores (atomics count), maintained at dispatch/commit/squash.
    stores_in_flight: usize,
    /// Sequence numbers of in-flight stores, oldest first, for memory
    /// disambiguation: a load walks only the (few) older stores instead of
    /// every older ROB entry.
    store_seqs: VecDeque<u64>,
    /// Sequence numbers of in-flight control-flow instructions that have not
    /// resolved, oldest first; resolved/committed entries are lazily popped,
    /// so the front is always the oldest unresolved branch.
    branch_seqs: VecDeque<u64>,
    /// Whether the last [`tick`](Self::tick) performed any pipeline work.
    tick_active: bool,
    /// Completion tickets: `(done_at, seq)` pushed whenever an entry enters
    /// `Executing(done_at)` with a finite time. The complete stage pops the
    /// due tickets instead of scanning the whole ROB, and
    /// [`next_wake`](Self::next_wake) is the heap minimum. Squashes leave
    /// stale tickets behind; they are validated (and discarded) on pop.
    completion_q: EventQueue<u64>,
    /// Entries currently in `Status::Waiting` (operands/FU pending).
    waiting_count: usize,
    /// Entries parked by a memory-model retry (`mem_retry`, executing at
    /// `Cycle::NEVER`), re-polled by the issue stage each cycle.
    retry_count: usize,
    /// Reusable scratch of due sequence numbers for the complete stage.
    due_scratch: Vec<u64>,
    /// Memo of the last fruitless issue scan. While valid, every `Waiting`
    /// entry with seq below `scan_floor_seq` was seen un-issuable and nothing
    /// that could change that has happened since, so the next scan resumes at
    /// the floor with the window counter primed to `scan_floor_rank` (the
    /// number of Waiting entries below the floor). Fetch keeps the memo —
    /// new entries land past the floor and get scanned; any commit,
    /// completion, squash or issue invalidates it. This turns the common
    /// "fetching while the ROB head waits on DRAM" cycles from a full
    /// window scan into a scan of just the newly fetched entries.
    scan_memo_valid: bool,
    scan_floor_seq: u64,
    scan_floor_rank: usize,
    // Reusable scratch for the taint walk (STT support) — allocated once.
    taint_stack: Vec<usize>,
    taint_visited: Vec<bool>,
}

impl OooCore {
    /// Creates a core with the given id using the pipeline and predictor
    /// parameters from `config`.
    pub fn new(core_id: usize, config: &SystemConfig) -> Self {
        OooCore {
            core_id,
            pipeline: config.pipeline,
            predictor: BranchPredictor::new(&config.branch_predictor),
            rob: VecDeque::with_capacity(config.pipeline.rob_entries),
            next_seq: 0,
            thread: None,
            fetch_pc: 0,
            fetch_stalled_until: Cycle::ZERO,
            fetch_halted: false,
            last_fetch_line: None,
            commit_stalled_until: Cycle::ZERO,
            halted: true,
            stats: CoreStats::default(),
            done_prefix: 0,
            reg_producer: [NO_PRODUCER; NUM_REGS],
            loads_in_flight: 0,
            stores_in_flight: 0,
            store_seqs: VecDeque::new(),
            branch_seqs: VecDeque::new(),
            tick_active: false,
            completion_q: EventQueue::new(),
            waiting_count: 0,
            retry_count: 0,
            due_scratch: Vec::new(),
            scan_memo_valid: false,
            scan_floor_seq: 0,
            scan_floor_rank: 0,
            taint_stack: Vec::new(),
            taint_visited: Vec::new(),
        }
    }

    /// This core's identifier.
    pub fn id(&self) -> usize {
        self.core_id
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Whether the core currently has no runnable thread (idle or halted).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Read-only access to the running thread's context, if any.
    pub fn thread(&self) -> Option<&ThreadContext> {
        self.thread.as_ref()
    }

    /// Mutable access to the branch predictor (the OS model flushes the BTB on
    /// context switches when that mitigation is enabled).
    pub fn predictor_mut(&mut self) -> &mut BranchPredictor {
        &mut self.predictor
    }

    /// The sequence number of the ROB head (or of the next dispatch when the
    /// ROB is empty). `rob[i].seq == head_seq() + i` always holds: dispatch
    /// appends consecutive numbers, commit pops the front, squash truncates a
    /// suffix — the ROB is contiguous in sequence numbers.
    fn head_seq(&self) -> u64 {
        self.rob.front().map_or(self.next_seq, |e| e.seq)
    }

    /// Installs a thread on this core, discarding any in-flight speculative
    /// work, and returns the previously running thread's context.
    pub fn swap_thread(&mut self, new_thread: Option<ThreadContext>) -> Option<ThreadContext> {
        self.rob.clear();
        self.done_prefix = 0;
        self.reg_producer = [NO_PRODUCER; NUM_REGS];
        self.loads_in_flight = 0;
        self.stores_in_flight = 0;
        self.store_seqs.clear();
        self.branch_seqs.clear();
        self.completion_q.clear();
        self.waiting_count = 0;
        self.retry_count = 0;
        self.scan_memo_valid = false;
        self.scan_floor_seq = 0;
        self.scan_floor_rank = 0;
        self.last_fetch_line = None;
        let old = self.thread.take();
        self.thread = new_thread;
        if let Some(t) = &self.thread {
            self.fetch_pc = t.pc;
            self.fetch_halted = t.halted;
            self.halted = t.halted;
        } else {
            self.halted = true;
            self.fetch_halted = true;
        }
        old
    }

    /// Runs a single-threaded program to completion on this core with the
    /// given memory model, returning the cycle at which it halted.
    ///
    /// Idle stretches (every in-flight instruction waiting on a known wake
    /// cycle, fetch stalled) are fast-forwarded; the reported cycle count and
    /// all statistics are identical to ticking every cycle.
    ///
    /// # Errors
    /// Returns `Err(cycles_simulated)` if the program does not halt within
    /// `max_cycles`.
    pub fn run_to_halt(
        &mut self,
        thread: ThreadContext,
        mem: &mut dyn MemoryModel,
        max_cycles: u64,
    ) -> Result<u64, u64> {
        self.swap_thread(Some(thread));
        let fast_forward = !naive_loop_requested();
        let mut events = Vec::new();
        let mut now = Cycle::ZERO;
        while !self.halted && now.raw() < max_cycles {
            events.clear();
            self.tick(now, mem, &mut events);
            now += 1;
            // Skip only when this tick did nothing AND the memory model has
            // no queued background work its per-cycle tick would advance.
            if fast_forward && !self.tick_active && mem.is_idle(self.core_id) {
                let wake = self.next_wake(now).raw().min(max_cycles);
                if wake > now.raw() {
                    self.skip_idle_cycles(wake - now.raw());
                    now = Cycle::new(wake);
                }
            }
        }
        if self.halted {
            Ok(now.raw())
        } else {
            Err(now.raw())
        }
    }

    /// Advances the core by one cycle, appending the architectural events that
    /// committed during this cycle to `events` (the buffer is *not* cleared —
    /// the caller owns and reuses it, so the hot loop never allocates).
    pub fn tick(&mut self, now: Cycle, mem: &mut dyn MemoryModel, events: &mut Vec<CoreEvent>) {
        if self.thread.is_none() || self.halted {
            self.tick_active = false;
            return;
        }
        self.stats.cycles += 1;
        mem.tick(self.core_id, now);

        let committed_before = self.stats.committed;
        let commit_active = {
            self.commit_stage(now, mem, events);
            self.stats.committed != committed_before
        };
        let complete_active = self.complete_stage(now, mem);
        let issue_active = self.issue_stage(now, mem);
        let fetch_active = self.fetch_stage(now, mem);
        self.tick_active = commit_active || complete_active || issue_active || fetch_active;
    }

    /// Whether the last [`tick`](Self::tick) performed no pipeline work at
    /// all (no commit, completion, issue, retry poll, or fetch progress). A
    /// quiescent core's state is a pure function of the cycle timers, so the
    /// driving loop may jump to [`next_wake`](Self::next_wake) and credit the
    /// skipped cycles with [`skip_idle_cycles`](Self::skip_idle_cycles)
    /// without changing any observable behaviour.
    pub fn quiescent(&self) -> bool {
        !self.tick_active
    }

    /// The earliest tick cycle at or after `now` (the *next* tick's cycle) at
    /// which a quiescent core can make progress again: the earliest in-flight
    /// completion, the end of a fetch stall, or the end of a commit stall
    /// with a finished head. [`Cycle::NEVER`] when nothing is pending (the
    /// core is deadlocked or drained; the naive loop would spin to the cycle
    /// budget, and the fast-forward loop jumps there directly). Stale timers
    /// already behind `now` are ignored — on a quiescent core they cannot be
    /// what the pipeline is waiting for.
    pub fn next_wake(&self, now: Cycle) -> Cycle {
        // The completion heap's minimum. It may name a squashed instruction
        // (stale tickets are only discarded when popped), in which case the
        // wake is early: the tick at that cycle is a no-op that drains the
        // stale entry — behaviour the naive loop also exhibits, since it
        // ticks every cycle anyway.
        let mut wake = self.completion_q.peek().max_of(now);
        if self.done_prefix > 0 && self.commit_stalled_until >= now {
            wake = wake.min(self.commit_stalled_until);
        }
        if !self.fetch_halted && self.fetch_stalled_until >= now {
            wake = wake.min(self.fetch_stalled_until);
        }
        wake
    }

    /// Credits `skipped` fast-forwarded idle cycles to this core's cycle
    /// counter, exactly as if [`tick`](Self::tick) had been called (and done
    /// nothing) on each of them.
    pub fn skip_idle_cycles(&mut self, skipped: u64) {
        if self.thread.is_some() && !self.halted {
            self.stats.cycles += skipped;
        }
    }

    // ------------------------------------------------------------------
    // commit
    // ------------------------------------------------------------------

    fn commit_stage(&mut self, now: Cycle, mem: &mut dyn MemoryModel, events: &mut Vec<CoreEvent>) {
        if now < self.commit_stalled_until {
            return;
        }
        let width = self.pipeline.width;
        for _ in 0..width {
            if self.done_prefix == 0 {
                break;
            }
            let entry = self.rob.pop_front().expect("done prefix implies a head");
            self.done_prefix -= 1;
            self.retire_bookkeeping(&entry);
            self.retire_entry(&entry, now, mem, events);
            if self.halted || now < self.commit_stalled_until {
                break;
            }
        }
    }

    /// Updates the incremental structures for a popped (committed) entry.
    fn retire_bookkeeping(&mut self, entry: &RobEntry) {
        // Commit shifts the ROB and can unblock issue (register fallback,
        // head-only instructions): the fruitless-scan memo no longer holds.
        self.scan_memo_valid = false;
        if entry.is_load() {
            self.loads_in_flight -= 1;
        }
        if entry.is_store() {
            self.stores_in_flight -= 1;
            // Memory operations commit in order, so this store is the front.
            debug_assert_eq!(self.store_seqs.front(), Some(&entry.seq));
            self.store_seqs.pop_front();
        }
        if entry.is_branch() && self.branch_seqs.front() == Some(&entry.seq) {
            self.branch_seqs.pop_front();
        }
        if let Some(dest) = entry.inst.dest() {
            if self.reg_producer[dest.index()] == entry.seq {
                self.reg_producer[dest.index()] = NO_PRODUCER;
            }
        }
    }

    fn retire_entry(
        &mut self,
        entry: &RobEntry,
        now: Cycle,
        mem: &mut dyn MemoryModel,
        events: &mut Vec<CoreEvent>,
    ) {
        let entry_pc_addr = self.pc_addr(entry.pc);
        let thread = self.thread.as_mut().expect("running thread");
        self.stats.committed += 1;

        // Architectural register update.
        if let (Some(dest), Some(result)) = (entry.inst.dest(), entry.result) {
            thread.regs.write(dest, result);
        }

        // Memory effects and commit-time notifications.
        if entry.is_memory() {
            let addr = entry.mem_addr.expect("memory op has an address");
            if entry.is_store() {
                let data = entry.store_data.expect("store has data");
                let width = match entry.inst {
                    Instruction::Store { width, .. } => width,
                    _ => MemWidth::Double,
                };
                thread.memory.borrow_mut().write(addr, data, width);
                self.stats.stores += 1;
            }
            if entry.is_load() {
                self.stats.loads += 1;
            }
            let ctx = MemAccessCtx {
                core: self.core_id,
                vaddr: addr,
                pc: entry_pc_addr,
                when: now,
                speculative: false,
                is_store: entry.is_store(),
                under_unresolved_branch: false,
                addr_tainted_spectre: false,
                addr_tainted_future: false,
            };
            let extra = mem.commit_access(&ctx);
            if extra > 0 {
                self.commit_stalled_until = now.saturating_add(extra);
            }
        }

        if matches!(entry.inst.class(), InstClass::Branch) {
            self.stats.branches += 1;
        }

        // Notify the memory model that the instruction itself committed, so
        // instruction-filter-cache lines can be marked committed (§4.7).
        let fetch_ctx = MemAccessCtx {
            core: self.core_id,
            vaddr: entry_pc_addr,
            pc: entry_pc_addr,
            when: now,
            speculative: false,
            is_store: false,
            under_unresolved_branch: false,
            addr_tainted_spectre: false,
            addr_tainted_future: false,
        };
        mem.commit_fetch(&fetch_ctx);

        // Committed program counter follows the actual path.
        thread.pc = entry.actual_next;

        match entry.inst {
            Instruction::Syscall { code } => events.push(CoreEvent::Syscall(code)),
            Instruction::SandboxEnter => events.push(CoreEvent::SandboxEnter),
            Instruction::SandboxExit => events.push(CoreEvent::SandboxExit),
            Instruction::Halt => {
                thread.halted = true;
                self.halted = true;
                self.fetch_halted = true;
                events.push(CoreEvent::Halted);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // complete (writeback + branch resolution)
    // ------------------------------------------------------------------

    /// Moves finished executions to `Done`, oldest first, resolving branches.
    /// Returns whether any entry changed state (squashes included).
    ///
    /// Driven by the completion-ticket heap: only the tickets due at `now`
    /// are popped, so the stage costs O(completions · log ROB) instead of a
    /// full ROB scan per cycle. Tickets are validated against the entry they
    /// name — squashes leave stale tickets behind, and a squash followed by
    /// re-dispatch reuses sequence numbers, so a ticket is live only if its
    /// entry is still `Executing` at exactly the ticketed cycle. (A stale
    /// ticket that collides with a reused sequence number *and* its new
    /// completion time merely completes an entry that is genuinely due;
    /// the entry's own ticket then pops as a harmless duplicate.)
    fn complete_stage(&mut self, now: Cycle, mem: &mut dyn MemoryModel) -> bool {
        let head = self.head_seq();
        let rob_len = self.rob.len() as u64;
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        while let Some((ticket_time, seq)) = self.completion_q.pop_due(now) {
            if seq < head || seq - head >= rob_len {
                continue; // committed or squashed: stale
            }
            match self.rob[(seq - head) as usize].status {
                Status::Executing(done_at) if done_at == ticket_time => due.push(seq),
                _ => {} // already Done (duplicate) or re-issued: stale
            }
        }
        // Process in program order: the done prefix extends front-to-back and
        // the *oldest* mispredicted branch must be the one that squashes.
        due.sort_unstable();
        due.dedup();
        let mut squash_after: Option<(usize, usize)> = None; // (rob index, redirect pc)
        let mut transitions = false;
        if !due.is_empty() {
            // Done transitions wake dependants: the fruitless-scan memo no
            // longer holds.
            self.scan_memo_valid = false;
        }
        for &seq in due.iter() {
            let idx = (seq - head) as usize;
            transitions = true;
            self.rob[idx].status = Status::Done;
            if idx == self.done_prefix {
                // Extend the done prefix over this entry and any previously
                // finished entries it unblocks.
                self.done_prefix += 1;
                while self.done_prefix < self.rob.len() && self.rob[self.done_prefix].is_done() {
                    self.done_prefix += 1;
                }
            }
            if self.rob[idx].is_branch() {
                let (mispredicted, redirect) = self.resolve_branch(idx);
                if mispredicted {
                    // Younger due entries stay `Executing`; the squash below
                    // removes them, exactly as the scan-based stage left them
                    // untransitioned when it broke at the first mispredict.
                    squash_after = Some((idx, redirect));
                    break;
                }
            }
        }
        self.due_scratch = due;
        if let Some((idx, redirect)) = squash_after {
            self.squash_younger_than(idx, redirect, now, mem);
        }
        transitions
    }

    /// Resolves the control-flow instruction at ROB index `idx`. Returns
    /// whether it was mispredicted and the correct next instruction index.
    fn resolve_branch(&mut self, idx: usize) -> (bool, usize) {
        let entry = &self.rob[idx];
        let actual_next = entry.actual_next;
        let mispredicted = actual_next != entry.predicted_next;
        let conditional = matches!(entry.inst.class(), InstClass::Branch);
        let taken = match entry.inst {
            Instruction::Branch { .. } => actual_next != entry.pc + 1,
            _ => true,
        };
        let update = BranchUpdate {
            pc: self.pc_addr(entry.pc),
            taken,
            target: actual_next,
            conditional,
        };
        self.predictor.update(&update, mispredicted);
        if mispredicted {
            self.stats.mispredictions += 1;
        }
        (mispredicted, actual_next)
    }

    /// Squashes every ROB entry younger than index `idx` and redirects fetch.
    fn squash_younger_than(
        &mut self,
        idx: usize,
        redirect: usize,
        now: Cycle,
        mem: &mut dyn MemoryModel,
    ) {
        self.scan_memo_valid = false;
        let removed = self.rob.len().saturating_sub(idx + 1);
        if removed > 0 {
            for e in self.rob.iter().skip(idx + 1) {
                self.stats.squashed += 1;
                if e.is_load() && !matches!(e.status, Status::Waiting) {
                    self.stats.squashed_loads += 1;
                }
                if e.is_load() {
                    self.loads_in_flight -= 1;
                }
                if e.is_store() {
                    self.stores_in_flight -= 1;
                }
                // Completion tickets of removed entries go stale in the heap
                // (validated away on pop); the issue-candidate counts must be
                // maintained eagerly.
                match e.status {
                    Status::Waiting => self.waiting_count -= 1,
                    Status::Executing(t) if t == Cycle::NEVER && e.mem_retry => {
                        self.retry_count -= 1
                    }
                    _ => {}
                }
            }
            self.rob.truncate(idx + 1);
            self.done_prefix = self.done_prefix.min(idx + 1);
            let max_kept_seq = self.head_seq() + idx as u64;
            // Reclaim the squashed sequence numbers so `rob[i].seq ==
            // head_seq + i` stays true for entries dispatched down the
            // corrected path (the O(1) producer links depend on it).
            self.next_seq = max_kept_seq + 1;
            while self.store_seqs.back().is_some_and(|&s| s > max_kept_seq) {
                self.store_seqs.pop_back();
            }
            while self.branch_seqs.back().is_some_and(|&s| s > max_kept_seq) {
                self.branch_seqs.pop_back();
            }
            // Roll the scoreboard back to the youngest surviving producers.
            self.reg_producer = [NO_PRODUCER; NUM_REGS];
            for e in &self.rob {
                if let Some(dest) = e.inst.dest() {
                    self.reg_producer[dest.index()] = e.seq;
                }
            }
        }
        mem.on_squash(self.core_id, now);
        self.predictor.clear_ras();
        self.fetch_pc = redirect;
        self.fetch_halted = false;
        self.last_fetch_line = None;
        self.fetch_stalled_until = now.saturating_add(self.pipeline.mispredict_penalty);
    }

    // ------------------------------------------------------------------
    // issue / execute
    // ------------------------------------------------------------------

    /// Attempts to start execution of ready instructions. Returns whether any
    /// instruction issued or any parked memory access re-polled the memory
    /// model (both make the cycle non-quiescent).
    fn issue_stage(&mut self, now: Cycle, mem: &mut dyn MemoryModel) -> bool {
        // Issue candidates are the Waiting entries plus the parked memory
        // retries; everything else in the ROB is just scanned past. The
        // eagerly-maintained counts let the loop stop at the last candidate
        // (and skip the stage entirely on a fully-stalled ROB).
        let mut remaining = self.waiting_count + self.retry_count;
        if remaining == 0 {
            return false;
        }
        let head = self.head_seq();
        let mut issued = 0usize;
        let mut attempts = 0usize;
        let mut int_used = 0usize;
        let mut fp_used = 0usize;
        let mut muldiv_used = 0usize;
        let mut mem_ports_used = 0usize;
        // The instruction window: only the first `iq_entries` waiting entries
        // are candidates for issue.
        let mut window_seen = 0usize;
        // Resume past the memoized fruitless-scan floor: the skipped prefix
        // holds only un-issuable Waiting entries (counted into the window)
        // and non-candidates, and a scan over them has no side effects at
        // all, so skipping it is invisible. A parked retry must be re-polled
        // every cycle, but a retry can only appear through an issue, which
        // invalidates the memo — valid memo implies no retries.
        let start_idx = if self.scan_memo_valid {
            debug_assert_eq!(self.retry_count, 0);
            debug_assert!(self.scan_floor_seq >= head);
            window_seen = self.scan_floor_rank;
            remaining -= self.scan_floor_rank;
            if remaining == 0 {
                return false;
            }
            (self.scan_floor_seq - head) as usize
        } else {
            0
        };
        // Where scanning ceased, for the memo: `(index, waiting entries
        // strictly below it)`. `None` means the loop ran off the ROB tail.
        let mut stop: Option<(usize, usize)> = None;

        for idx in start_idx..self.rob.len() {
            if issued >= self.pipeline.width || remaining == 0 {
                stop = Some((idx, window_seen));
                break;
            }
            let status = self.rob[idx].status;
            // Finished entries are scanned straight past: they hold no
            // candidate and, being done, cannot be a serialising barrier.
            if matches!(status, Status::Done) {
                continue;
            }

            // An unfinished serialising instruction blocks younger
            // instructions from issuing. It can itself execute only at the
            // ROB head, where the Waiting branch below handles it like any
            // other candidate; past the head it cannot issue at all
            // (`try_issue_at` refuses before touching any state), so there
            // is nothing to try here.
            if idx > 0 && self.rob[idx].inst.is_serialising() {
                stop = Some((idx, window_seen));
                break;
            }

            if matches!(status, Status::Waiting) {
                remaining -= 1;
                window_seen += 1;
                if window_seen > self.pipeline.iq_entries {
                    stop = Some((idx, window_seen - 1));
                    break;
                }
                // Functional unit availability.
                let class = self.rob[idx].inst.class();
                let fu_ok = match class {
                    InstClass::IntAlu
                    | InstClass::Branch
                    | InstClass::Jump
                    | InstClass::Call
                    | InstClass::Return
                    | InstClass::Nop
                    | InstClass::SandboxMarker
                    | InstClass::Syscall
                    | InstClass::Barrier
                    | InstClass::Halt => int_used < self.pipeline.int_alus,
                    InstClass::FpAlu => fp_used < self.pipeline.fp_alus,
                    InstClass::MulDiv => muldiv_used < self.pipeline.mul_div_units,
                    InstClass::Load | InstClass::Store | InstClass::Atomic => mem_ports_used < 4,
                };
                if !fu_ok {
                    continue;
                }
                if self.try_issue_at(idx, now, mem) {
                    issued += 1;
                    self.waiting_count -= 1;
                    if self.entry_is_parked(idx) {
                        // The memory model parked the access for a later
                        // retry: it left Waiting but remains a candidate.
                        self.retry_count += 1;
                    }
                    match class {
                        InstClass::FpAlu => fp_used += 1,
                        InstClass::MulDiv => muldiv_used += 1,
                        InstClass::Load | InstClass::Store | InstClass::Atomic => {
                            mem_ports_used += 1
                        }
                        _ => int_used += 1,
                    }
                }
            } else if matches!(status, Status::Executing(_)) && self.rob[idx].mem_retry {
                // A previously delayed memory access: retry it (the memory
                // model re-evaluates its condition; at the head it is
                // non-speculative and must succeed). The poll reaches the
                // memory model, so a cycle with a parked retry is never
                // quiescent.
                remaining -= 1;
                attempts += 1;
                if self.try_issue_at(idx, now, mem) {
                    issued += 1;
                    mem_ports_used += 1;
                    if !self.entry_is_parked(idx) {
                        // Completed (or forwarded): no longer a retry poll.
                        self.retry_count -= 1;
                    }
                }
            }
        }
        let active = issued > 0 || attempts > 0;
        if active {
            // Something issued or polled: candidate state changed, so any
            // previous fruitless-scan memo is dead.
            self.scan_memo_valid = false;
        } else {
            // Nothing happened and nothing was perturbed: remember the scan
            // frontier so the next scan (absent commits, completions or
            // squashes) resumes there.
            let (stop_idx, stop_rank) = stop.unwrap_or((self.rob.len(), window_seen));
            self.scan_memo_valid = true;
            self.scan_floor_seq = head + stop_idx as u64;
            self.scan_floor_rank = stop_rank;
        }
        active
    }

    /// Whether entry `idx` is parked waiting for a memory-model retry (it
    /// "executes" at `Cycle::NEVER` until the retry succeeds).
    fn entry_is_parked(&self, idx: usize) -> bool {
        let e = &self.rob[idx];
        e.mem_retry && matches!(e.status, Status::Executing(t) if t == Cycle::NEVER)
    }

    /// The value of source register `reg` as seen through its dispatch-time
    /// producer link: the linked in-flight producer's result once it is done,
    /// the architectural register if the producer already committed (or none
    /// existed), `None` while the producer is still executing.
    fn operand_value(&self, reg: Reg, producer_seq: u64) -> Option<u64> {
        if reg.is_zero() {
            return Some(0);
        }
        if producer_seq != NO_PRODUCER && producer_seq >= self.head_seq() {
            let producer = &self.rob[(producer_seq - self.head_seq()) as usize];
            debug_assert_eq!(producer.inst.dest(), Some(reg));
            // Execute-at-issue: results exist as soon as the producer starts
            // executing, but consumers model the dependency latency by
            // forwarding only once the producer is Done.
            return if producer.is_done() {
                producer.result
            } else {
                None
            };
        }
        let thread = self.thread.as_ref()?;
        Some(thread.regs.read(reg))
    }

    /// Attempts to execute the entry at ROB index `idx`. Returns whether it
    /// started (or completed) execution this cycle.
    fn try_issue_at(&mut self, idx: usize, now: Cycle, mem: &mut dyn MemoryModel) -> bool {
        let inst = self.rob[idx].inst;
        let class = inst.class();

        // Serialising instructions and atomics execute only at the ROB head.
        if (inst.is_serialising() || matches!(class, InstClass::Atomic)) && idx != 0 {
            return false;
        }
        // A cycle-counter read waits until every older instruction has
        // finished so it observes an accurate time (like lfence; rdtsc). The
        // done-prefix counter answers "are all older entries done?" in O(1).
        if matches!(inst, Instruction::ReadCycle { .. }) && self.done_prefix < idx {
            return false;
        }

        // Gather operand values through the dispatch-time producer links.
        let (src_regs, num_sources) = inst.source_regs();
        let links = self.rob[idx].src_producers;
        let mut operands = [0u64; 2];
        for slot in 0..num_sources {
            match self.operand_value(src_regs[slot], links[slot]) {
                Some(v) => operands[slot] = v,
                None => return false,
            }
        }
        let operands = &operands[..num_sources];

        match class {
            InstClass::Load | InstClass::Store | InstClass::Atomic => {
                self.issue_memory(idx, now, mem, operands)
            }
            _ => {
                self.issue_non_memory(idx, now, operands);
                true
            }
        }
    }

    fn issue_non_memory(&mut self, idx: usize, now: Cycle, operands: &[u64]) {
        let entry = &mut self.rob[idx];
        let latency = entry.inst.exec_latency();
        let mut result = None;
        let mut actual_next = entry.pc + 1;
        match entry.inst {
            Instruction::AluReg { op, .. } => result = Some(eval_alu(op, operands[0], operands[1])),
            Instruction::AluImm { op, imm, .. } => {
                result = Some(eval_alu(op, operands[0], imm as u64))
            }
            Instruction::LoadImm { imm, .. } => result = Some(imm),
            Instruction::Fpu { op, .. } => result = Some(eval_fpu(op, operands[0], operands[1])),
            Instruction::Branch { cond, target, .. } => {
                let taken = eval_branch(cond, operands[0], operands[1]);
                actual_next = if taken { target } else { entry.pc + 1 };
            }
            Instruction::Jump { target } => actual_next = target,
            Instruction::JumpIndirect { offset, .. } => {
                actual_next = operands[0].wrapping_add(offset as u64) as usize;
            }
            Instruction::Call { target, .. } => {
                result = Some((entry.pc + 1) as u64);
                actual_next = target;
            }
            Instruction::Return { .. } => actual_next = operands[0] as usize,
            Instruction::ReadCycle { .. } => result = Some(now.raw()),
            _ => {}
        }
        entry.result = result;
        entry.actual_next = actual_next;
        let done_at = now.saturating_add(latency);
        let seq = entry.seq;
        entry.status = Status::Executing(done_at);
        self.completion_q.push(done_at, seq);
    }

    fn issue_memory(
        &mut self,
        idx: usize,
        now: Cycle,
        mem: &mut dyn MemoryModel,
        operands: &[u64],
    ) -> bool {
        let inst = self.rob[idx].inst;
        // Compute the effective address and (for stores) the data value.
        let (addr, data) = match inst {
            Instruction::Load { offset, .. } => {
                (VirtAddr::new(operands[0].wrapping_add(offset as u64)), None)
            }
            Instruction::Store { offset, .. } => (
                VirtAddr::new(operands[1].wrapping_add(offset as u64)),
                Some(operands[0]),
            ),
            Instruction::AtomicSwap { .. } | Instruction::AtomicAdd { .. } => {
                (VirtAddr::new(operands[1]), Some(operands[0]))
            }
            _ => unreachable!("issue_memory called for non-memory instruction"),
        };

        // Memory disambiguation: a load may not issue past an older store
        // whose address is unknown; if an older store to the same address has
        // its data, forward it. Only the in-flight stores are walked (youngest
        // first), not every older ROB entry.
        let is_load = matches!(inst.class(), InstClass::Load | InstClass::Atomic);
        let mut forwarded_value = None;
        if is_load {
            let head = self.head_seq();
            let seq = self.rob[idx].seq;
            let older = self.store_seqs.partition_point(|&s| s < seq);
            for &store_seq in self.store_seqs.range(..older).rev() {
                let store = &self.rob[(store_seq - head) as usize];
                debug_assert!(store.is_store());
                match store.mem_addr {
                    None => return false, // unknown older store address: wait
                    Some(a) if a == addr => {
                        forwarded_value = store.store_data;
                        break;
                    }
                    Some(_) => continue,
                }
            }
        }

        let under_unresolved_branch = self.has_older_unresolved_branch(idx);
        let (ts, tf) = if mem.needs_taint_tracking() {
            self.address_taint(idx)
        } else {
            (false, false)
        };
        let speculative = idx != 0;
        let pc_vaddr = self.pc_addr(self.rob[idx].pc);

        let entry = &mut self.rob[idx];
        entry.mem_addr = Some(addr);
        entry.store_data = data;

        match inst.class() {
            InstClass::Store => {
                // Stores execute (compute address/data) without touching the
                // cache; the write happens at commit. Tell the memory model so
                // it can prefetch the line in shared state if it wants.
                let ctx = MemAccessCtx {
                    core: self.core_id,
                    vaddr: addr,
                    pc: pc_vaddr,
                    when: now,
                    speculative,
                    is_store: true,
                    under_unresolved_branch,
                    addr_tainted_spectre: ts,
                    addr_tainted_future: tf,
                };
                let done_at = now.saturating_add(1);
                let seq = entry.seq;
                entry.status = Status::Executing(done_at);
                entry.actual_next = entry.pc + 1;
                self.completion_q.push(done_at, seq);
                mem.store_address_ready(&ctx);
                true
            }
            InstClass::Load | InstClass::Atomic => {
                let pc_addr = pc_vaddr;
                let is_atomic = matches!(inst.class(), InstClass::Atomic);
                if let Some(value) = forwarded_value {
                    // Store-to-load forwarding: 1-cycle, no cache access.
                    let entry = &mut self.rob[idx];
                    entry.result = Some(value);
                    entry.forwarded = true;
                    entry.actual_next = entry.pc + 1;
                    let done_at = now.saturating_add(1);
                    let seq = entry.seq;
                    entry.status = Status::Executing(done_at);
                    self.completion_q.push(done_at, seq);
                    return true;
                }
                let ctx = MemAccessCtx {
                    core: self.core_id,
                    vaddr: addr,
                    pc: pc_addr,
                    when: now,
                    speculative,
                    is_store: is_atomic,
                    under_unresolved_branch,
                    addr_tainted_spectre: ts,
                    addr_tainted_future: tf,
                };
                match mem.load(&ctx) {
                    MemOutcome::Done { latency } => {
                        // Functional read happens now (execute-at-issue).
                        let thread = self.thread.as_ref().expect("running thread");
                        let width = match inst {
                            Instruction::Load { width, .. } => width,
                            _ => MemWidth::Double,
                        };
                        let loaded = thread.memory.borrow().read(addr, width);
                        let entry = &mut self.rob[idx];
                        entry.result = Some(loaded);
                        entry.actual_next = entry.pc + 1;
                        entry.mem_retry = false;
                        let done_at = now.saturating_add(latency.max(1));
                        let seq = entry.seq;
                        entry.status = Status::Executing(done_at);
                        self.completion_q.push(done_at, seq);
                        // Atomics perform their read-modify-write functionally
                        // at execute time; they only run at the ROB head, so
                        // this is never speculative.
                        if is_atomic {
                            let thread = self.thread.as_ref().expect("running thread");
                            let new_value = match inst {
                                Instruction::AtomicSwap { .. } => data.unwrap_or(0),
                                Instruction::AtomicAdd { .. } => {
                                    loaded.wrapping_add(data.unwrap_or(0))
                                }
                                _ => unreachable!(),
                            };
                            thread
                                .memory
                                .borrow_mut()
                                .write(addr, new_value, MemWidth::Double);
                            let entry = &mut self.rob[idx];
                            entry.store_data = Some(new_value);
                        }
                        true
                    }
                    MemOutcome::RetryWhenNonSpeculative => {
                        self.stats.mem_retries += 1;
                        let entry = &mut self.rob[idx];
                        entry.mem_retry = true;
                        // Park the entry; it stays "executing" far in the
                        // future and is retried by the issue stage.
                        entry.status = Status::Executing(Cycle::NEVER);
                        entry.actual_next = entry.pc + 1;
                        true
                    }
                }
            }
            _ => unreachable!(),
        }
    }

    /// Computes the taint of entry `idx`'s address operands for speculative
    /// taint tracking (STT): whether any value feeding the address was
    /// produced by an in-flight load that is still "unsafe".
    ///
    /// A source load is unsafe under the *Spectre* attack model while it has
    /// an older unresolved conditional branch, and under the *Futuristic*
    /// model while any older instruction remains in the reorder buffer at all
    /// (conservatively, the load can be squashed — by an interrupt, fault or
    /// ordering violation of anything older — until it reaches the head).
    /// Taint is recomputed every time the access is (re)tried, so it naturally
    /// clears when the source load becomes safe — which is exactly when STT
    /// un-blocks the dependent transmitter.
    ///
    /// The walk follows the dispatch-time producer links, so no register scan
    /// is needed; the work list and visited set are reusable scratch buffers.
    fn address_taint(&mut self, idx: usize) -> (bool, bool) {
        let mut spectre = false;
        let mut future = false;
        let head = self.head_seq();
        let mut worklist = std::mem::take(&mut self.taint_stack);
        let mut visited = std::mem::take(&mut self.taint_visited);
        worklist.clear();
        visited.clear();
        visited.resize(idx, false);

        let push_links = |rob: &VecDeque<RobEntry>, at: usize, worklist: &mut Vec<usize>| {
            let (src_regs, num_sources) = rob[at].inst.source_regs();
            let links = rob[at].src_producers;
            for slot in 0..num_sources {
                if src_regs[slot].is_zero() || links[slot] == NO_PRODUCER || links[slot] < head {
                    continue;
                }
                worklist.push((links[slot] - head) as usize);
            }
        };
        push_links(&self.rob, idx, &mut worklist);

        while let Some(producer) = worklist.pop() {
            if visited[producer] {
                continue;
            }
            visited[producer] = true;
            if self.rob[producer].is_load() {
                if self.has_older_unresolved_branch(producer) {
                    spectre = true;
                }
                if producer > 0 {
                    future = true;
                }
            }
            // Follow the producer's own operands further up the chain.
            push_links(&self.rob, producer, &mut worklist);
            if spectre && future {
                break;
            }
        }
        self.taint_stack = worklist;
        self.taint_visited = visited;
        (spectre, future)
    }

    /// Whether any conditional branch older than ROB index `idx` has not yet
    /// resolved (finished executing). Answered from the ordered queue of
    /// unresolved control-flow sequence numbers: resolved or departed fronts
    /// are lazily popped, after which the front *is* the oldest unresolved
    /// branch.
    fn has_older_unresolved_branch(&mut self, idx: usize) -> bool {
        let head = self.head_seq();
        while let Some(&seq) = self.branch_seqs.front() {
            if seq < head {
                // Committed (branches commit only once resolved).
                self.branch_seqs.pop_front();
                continue;
            }
            let entry = &self.rob[(seq - head) as usize];
            if entry.is_done() {
                self.branch_seqs.pop_front();
                continue;
            }
            return seq < head + idx as u64;
        }
        false
    }

    // ------------------------------------------------------------------
    // fetch / dispatch
    // ------------------------------------------------------------------

    /// Fetches and dispatches along the predicted path. Returns whether any
    /// progress or state change happened (instructions dispatched, an I-cache
    /// access performed, fetch halted or stalled).
    fn fetch_stage(&mut self, now: Cycle, mem: &mut dyn MemoryModel) -> bool {
        if self.fetch_halted || now < self.fetch_stalled_until {
            return false;
        }
        let mut active = false;
        let line_bytes = 64;
        for _ in 0..self.pipeline.width {
            if self.rob.len() >= self.pipeline.rob_entries {
                break;
            }
            let Some(thread) = self.thread.as_ref() else {
                break;
            };
            let Some(inst) = thread.program.fetch(self.fetch_pc) else {
                self.fetch_halted = true;
                active = true;
                break;
            };
            if inst.class().is_memory() {
                if matches!(inst.class(), InstClass::Load | InstClass::Atomic)
                    && self.loads_in_flight >= self.pipeline.lq_entries
                {
                    break;
                }
                if matches!(inst.class(), InstClass::Store | InstClass::Atomic)
                    && self.stores_in_flight >= self.pipeline.sq_entries
                {
                    break;
                }
            }

            // Instruction-cache timing, charged once per new line.
            let fetch_addr = thread.program.inst_addr(self.fetch_pc);
            let fetch_line = fetch_addr.raw() / line_bytes;
            if self.last_fetch_line != Some(fetch_line) {
                let ctx = MemAccessCtx {
                    core: self.core_id,
                    vaddr: fetch_addr,
                    pc: fetch_addr,
                    when: now,
                    speculative: !self.rob.is_empty(),
                    is_store: false,
                    under_unresolved_branch: self.has_older_unresolved_branch(self.rob.len()),
                    addr_tainted_spectre: false,
                    addr_tainted_future: false,
                };
                let latency = match mem.fetch_instruction(&ctx) {
                    MemOutcome::Done { latency } => latency,
                    MemOutcome::RetryWhenNonSpeculative => 1,
                };
                active = true;
                self.last_fetch_line = Some(fetch_line);
                if latency > 1 {
                    self.fetch_stalled_until = now.saturating_add(latency);
                    break;
                }
            }

            // Branch prediction decides the next fetch PC.
            let pc = self.fetch_pc;
            let pc_vaddr = self.pc_addr(pc);
            let (predicted_next, predicted_taken) = match inst {
                Instruction::Branch { target, .. } => {
                    let taken = self.predictor.predict_direction(pc_vaddr);
                    (if taken { target } else { pc + 1 }, taken)
                }
                Instruction::Jump { target } => (target, true),
                Instruction::JumpIndirect { .. } => {
                    let target = self
                        .predictor
                        .predict_indirect_target(pc_vaddr)
                        .unwrap_or(pc + 1);
                    (target, true)
                }
                Instruction::Call { target, .. } => {
                    self.predictor.push_return(pc + 1);
                    (target, true)
                }
                Instruction::Return { .. } => {
                    let target = self
                        .predictor
                        .predict_return()
                        .or_else(|| self.predictor.predict_indirect_target(pc_vaddr))
                        .unwrap_or(pc + 1);
                    (target, true)
                }
                Instruction::Halt => (pc + 1, false),
                _ => (pc + 1, false),
            };

            // Capture the dispatch-time producer links from the scoreboard,
            // then claim the destination register for this entry.
            let (src_regs, num_sources) = inst.source_regs();
            let mut src_producers = [NO_PRODUCER; 2];
            for slot in 0..num_sources {
                if !src_regs[slot].is_zero() {
                    src_producers[slot] = self.reg_producer[src_regs[slot].index()];
                }
            }

            let entry = RobEntry {
                seq: self.next_seq,
                pc,
                inst,
                status: Status::Waiting,
                result: None,
                src_producers,
                mem_addr: None,
                store_data: None,
                mem_retry: false,
                forwarded: false,
                predicted_next,
                predicted_taken,
                actual_next: pc + 1,
            };
            if let Some(dest) = inst.dest() {
                self.reg_producer[dest.index()] = entry.seq;
            }
            if entry.is_load() {
                self.loads_in_flight += 1;
            }
            if entry.is_store() {
                self.stores_in_flight += 1;
                self.store_seqs.push_back(entry.seq);
            }
            if entry.is_branch() {
                self.branch_seqs.push_back(entry.seq);
            }
            self.next_seq += 1;
            self.rob.push_back(entry);
            self.waiting_count += 1;
            self.fetch_pc = predicted_next;
            active = true;

            if matches!(inst, Instruction::Halt) {
                // Stop fetching past a halt on the speculative path.
                self.fetch_halted = true;
                break;
            }
        }
        active
    }

    fn pc_addr(&self, pc: usize) -> VirtAddr {
        match &self.thread {
            Some(t) => t.program.inst_addr(pc),
            None => VirtAddr::new(pc as u64 * INST_BYTES),
        }
    }
}

impl std::fmt::Debug for OooCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OooCore")
            .field("core_id", &self.core_id)
            .field("rob_occupancy", &self.rob.len())
            .field("fetch_pc", &self.fetch_pc)
            .field("halted", &self.halted)
            .field("committed", &self.stats.committed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmodel::FixedLatencyMemory;
    use uarch_isa::interp::Interpreter;
    use uarch_isa::prog::{Program, ProgramBuilder};
    use uarch_isa::reg::Reg;

    fn run_program(program: &Program) -> (OooCore, ThreadContext, u64) {
        let cfg = SystemConfig::paper_default();
        let mut core = OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::default();
        let thread = ThreadContext::new(program.clone(), 0);
        let cycles = core
            .run_to_halt(thread, &mut mem, 2_000_000)
            .expect("program should halt");
        let finished = core.swap_thread(None).expect("thread present");
        (core, finished, cycles)
    }

    /// Runs a program while ticking every single cycle (no fast-forward),
    /// mirroring the naive pre-optimization loop.
    fn run_program_naive(program: &Program) -> (OooCore, ThreadContext, u64) {
        let cfg = SystemConfig::paper_default();
        let mut core = OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::default();
        core.swap_thread(Some(ThreadContext::new(program.clone(), 0)));
        let mut events = Vec::new();
        let mut now = Cycle::ZERO;
        while !core.is_halted() && now.raw() < 2_000_000 {
            core.tick(now, &mut mem, &mut events);
            now += 1;
        }
        assert!(core.is_halted(), "program should halt");
        let finished = core.swap_thread(None).expect("thread present");
        (core, finished, now.raw())
    }

    /// Runs a program on both the functional interpreter and the OoO core and
    /// asserts the architectural register results match.
    fn assert_matches_interpreter(program: &Program, regs_to_check: &[Reg]) {
        let mut interp = Interpreter::new(program);
        let golden = interp.run(5_000_000).expect("interpreter halts");
        let (_, finished, _) = run_program(program);
        for reg in regs_to_check {
            assert_eq!(
                finished.regs.read(*reg),
                golden.regs.read(*reg),
                "architectural mismatch in {reg}"
            );
        }
    }

    #[test]
    fn straight_line_arithmetic_matches_interpreter() {
        let mut b = ProgramBuilder::new("alu");
        b.li(Reg::X1, 10);
        b.li(Reg::X2, 3);
        b.mul(Reg::X3, Reg::X1, Reg::X2);
        b.sub(Reg::X4, Reg::X3, Reg::X2);
        b.addi(Reg::X5, Reg::X4, 100);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X3, Reg::X4, Reg::X5]);
    }

    #[test]
    fn loop_with_memory_matches_interpreter() {
        // Sum an array of 32 values through loads in a loop.
        let mut b = ProgramBuilder::new("sum-array");
        let values: Vec<u64> = (0..32).map(|i| i * 7 + 1).collect();
        b.data_u64(VirtAddr::new(0x1_0000), &values);
        let top = b.new_label();
        b.li(Reg::X1, 0x1_0000); // base
        b.li(Reg::X2, 0); // index
        b.li(Reg::X3, 0); // sum
        b.bind_label(top);
        b.shli(Reg::X4, Reg::X2, 3);
        b.add(Reg::X4, Reg::X1, Reg::X4);
        b.load(Reg::X5, Reg::X4, 0);
        b.add(Reg::X3, Reg::X3, Reg::X5);
        b.addi(Reg::X2, Reg::X2, 1);
        b.blt_imm(Reg::X2, 32, top);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X3]);
        let (_, finished, _) = run_program(&p);
        assert_eq!(finished.regs.read(Reg::X3), values.iter().sum::<u64>());
    }

    #[test]
    fn stores_then_loads_round_trip() {
        let mut b = ProgramBuilder::new("store-load");
        b.li(Reg::X1, 0x2_0000);
        b.li(Reg::X2, 1234);
        b.store(Reg::X2, Reg::X1, 0);
        b.load(Reg::X3, Reg::X1, 0);
        b.addi(Reg::X3, Reg::X3, 1);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X3]);
        let (_, finished, _) = run_program(&p);
        assert_eq!(finished.regs.read(Reg::X3), 1235);
    }

    #[test]
    fn calls_and_returns_match_interpreter() {
        let mut b = ProgramBuilder::new("calls");
        let func = b.new_label();
        let done = b.new_label();
        b.li(Reg::X1, 1);
        b.call(func, Reg::X30);
        b.call(func, Reg::X30);
        b.jump(done);
        b.bind_label(func);
        b.shli(Reg::X1, Reg::X1, 2);
        b.ret(Reg::X30);
        b.bind_label(done);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X1]);
    }

    #[test]
    fn data_dependent_branches_match_interpreter() {
        // A loop whose branch direction depends on loaded data, with an
        // irregular pattern so mispredictions occur.
        let mut b = ProgramBuilder::new("branchy");
        let values: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) % 7).collect();
        b.data_u64(VirtAddr::new(0x3_0000), &values);
        let top = b.new_label();
        let skip = b.new_label();
        b.li(Reg::X1, 0x3_0000);
        b.li(Reg::X2, 0);
        b.li(Reg::X3, 0);
        b.bind_label(top);
        b.shli(Reg::X4, Reg::X2, 3);
        b.add(Reg::X4, Reg::X1, Reg::X4);
        b.load(Reg::X5, Reg::X4, 0);
        b.li(Reg::X6, 3);
        b.blt(Reg::X5, Reg::X6, skip);
        b.addi(Reg::X3, Reg::X3, 1);
        b.bind_label(skip);
        b.addi(Reg::X2, Reg::X2, 1);
        b.blt_imm(Reg::X2, 64, top);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X3]);
        let (core, _, _) = run_program(&p);
        assert!(
            core.stats().mispredictions > 0,
            "irregular branches should mispredict"
        );
        assert!(
            core.stats().squashed > 0,
            "mispredictions should squash wrong-path work"
        );
    }

    #[test]
    fn wrong_path_loads_reach_the_memory_model() {
        // Train a branch not-taken, then make it taken once: the wrong-path
        // load behind the mispredicted branch must reach the memory model and
        // then be squashed.
        let mut b = ProgramBuilder::new("wrong-path");
        b.data_u64(VirtAddr::new(0x9000), &[0]);
        let top = b.new_label();
        let skip = b.new_label();
        let after = b.new_label();
        b.li(Reg::X1, 0);
        b.li(Reg::X9, 0x9000);
        b.bind_label(top);
        // if X1 < 20 skip the "secret" load, else fall through to it.
        b.li(Reg::X2, 20);
        b.blt(Reg::X1, Reg::X2, skip);
        b.load(Reg::X3, Reg::X9, 0); // executed speculatively when mispredicted
        b.jump(after);
        b.bind_label(skip);
        b.nop();
        b.bind_label(after);
        b.addi(Reg::X1, Reg::X1, 1);
        b.blt_imm(Reg::X1, 24, top);
        b.halt();
        let p = b.build().unwrap();
        let (core, _, _) = run_program(&p);
        assert!(core.stats().mispredictions > 0);
        // The functional result is unaffected by wrong-path execution.
        assert_matches_interpreter(&p, &[Reg::X1, Reg::X3]);
    }

    #[test]
    fn rdcycle_reads_increase_monotonically() {
        let mut b = ProgramBuilder::new("rdcycle");
        b.rdcycle(Reg::X1);
        b.li(Reg::X5, 0x4_0000);
        b.load(Reg::X6, Reg::X5, 0);
        b.add(Reg::X7, Reg::X6, Reg::X6);
        b.rdcycle(Reg::X2);
        b.sub(Reg::X3, Reg::X2, Reg::X1);
        b.halt();
        let p = b.build().unwrap();
        let (_, finished, _) = run_program(&p);
        let delta = finished.regs.read(Reg::X3);
        assert!(
            delta > 0,
            "the second rdcycle must observe later time than the first"
        );
        assert!((delta as i64) > 0);
    }

    #[test]
    fn atomics_are_executed_at_the_head_and_update_memory() {
        let mut b = ProgramBuilder::new("atomic");
        b.data_u64(VirtAddr::new(0x5000), &[10]);
        b.li(Reg::X1, 0x5000);
        b.li(Reg::X2, 5);
        b.amoadd(Reg::X3, Reg::X2, Reg::X1);
        b.load(Reg::X4, Reg::X1, 0);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X3, Reg::X4]);
        let (_, finished, _) = run_program(&p);
        assert_eq!(finished.regs.read(Reg::X3), 10);
        assert_eq!(finished.regs.read(Reg::X4), 15);
    }

    #[test]
    fn spec_barrier_and_syscall_programs_complete() {
        let mut b = ProgramBuilder::new("serialising");
        b.li(Reg::X1, 1);
        b.spec_barrier();
        b.addi(Reg::X1, Reg::X1, 1);
        b.syscall(7);
        b.addi(Reg::X1, Reg::X1, 1);
        b.sandbox_enter();
        b.addi(Reg::X1, Reg::X1, 1);
        b.sandbox_exit();
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X1]);
    }

    #[test]
    fn core_reports_committed_events() {
        let mut b = ProgramBuilder::new("events");
        b.syscall(3);
        b.sandbox_enter();
        b.sandbox_exit();
        b.halt();
        let p = b.build().unwrap();
        let cfg = SystemConfig::paper_default();
        let mut core = OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::default();
        core.swap_thread(Some(ThreadContext::new(p, 0)));
        let mut seen = Vec::new();
        let mut now = Cycle::ZERO;
        while !core.is_halted() && now.raw() < 10_000 {
            core.tick(now, &mut mem, &mut seen);
            now += 1;
        }
        assert_eq!(
            seen,
            vec![
                CoreEvent::Syscall(3),
                CoreEvent::SandboxEnter,
                CoreEvent::SandboxExit,
                CoreEvent::Halted
            ]
        );
    }

    #[test]
    fn ipc_is_positive_and_bounded_by_width() {
        let mut b = ProgramBuilder::new("ipc");
        let top = b.new_label();
        b.li(Reg::X1, 0);
        b.bind_label(top);
        for _ in 0..8 {
            b.addi(Reg::X2, Reg::X2, 1);
        }
        b.addi(Reg::X1, Reg::X1, 1);
        b.blt_imm(Reg::X1, 200, top);
        b.halt();
        let p = b.build().unwrap();
        let (core, _, _) = run_program(&p);
        let ipc = core.stats().ipc();
        assert!(
            ipc > 0.5,
            "simple ALU loop should achieve reasonable IPC, got {ipc}"
        );
        assert!(ipc <= 8.0, "IPC cannot exceed the commit width");
    }

    #[test]
    fn fast_forward_matches_the_naive_loop_exactly() {
        // The event-skipping loop must be invisible: same halt cycle, same
        // statistics, same architectural state, on a workload that mixes
        // memory stalls (idle stretches to skip), mispredicted branches,
        // serialising instructions and store-to-load forwarding.
        let mut b = ProgramBuilder::new("ff-equivalence");
        let values: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) % 13).collect();
        b.data_u64(VirtAddr::new(0x6_0000), &values);
        let top = b.new_label();
        let skip = b.new_label();
        b.li(Reg::X1, 0x6_0000);
        b.li(Reg::X2, 0);
        b.li(Reg::X3, 0);
        b.bind_label(top);
        b.shli(Reg::X4, Reg::X2, 3);
        b.add(Reg::X4, Reg::X1, Reg::X4);
        b.load(Reg::X5, Reg::X4, 0);
        b.store(Reg::X5, Reg::X4, 512);
        b.load(Reg::X6, Reg::X4, 512);
        b.li(Reg::X7, 6);
        b.blt(Reg::X6, Reg::X7, skip);
        b.addi(Reg::X3, Reg::X3, 1);
        b.spec_barrier();
        b.bind_label(skip);
        b.addi(Reg::X2, Reg::X2, 1);
        b.blt_imm(Reg::X2, 64, top);
        b.halt();
        let p = b.build().unwrap();

        let (fast_core, fast_ctx, fast_cycles) = run_program(&p);
        let (naive_core, naive_ctx, naive_cycles) = run_program_naive(&p);
        assert_eq!(fast_cycles, naive_cycles, "halt cycle must be identical");
        assert_eq!(
            fast_core.stats(),
            naive_core.stats(),
            "every statistic must be identical"
        );
        assert_eq!(fast_ctx.regs.snapshot(), naive_ctx.regs.snapshot());
    }

    #[test]
    fn quiescent_ticks_report_a_wake_cycle() {
        // A load with a long fixed latency parks the core: the tick after
        // issue must be quiescent with the load's completion as the wake.
        let mut b = ProgramBuilder::new("wake");
        b.li(Reg::X1, 0x7_0000);
        b.load(Reg::X2, Reg::X1, 0);
        b.add(Reg::X3, Reg::X2, Reg::X2);
        b.halt();
        let p = b.build().unwrap();
        let cfg = SystemConfig::paper_default();
        let mut core = OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::new(200, 1);
        core.swap_thread(Some(ThreadContext::new(p, 0)));
        let mut events = Vec::new();
        let mut quiet_with_wake = false;
        let mut now = Cycle::ZERO;
        while !core.is_halted() && now.raw() < 10_000 {
            core.tick(now, &mut mem, &mut events);
            if core.quiescent() {
                let wake = core.next_wake(now + 1);
                assert!(wake > now, "wake must be in the future");
                if wake != Cycle::NEVER {
                    quiet_with_wake = true;
                }
            }
            now += 1;
        }
        assert!(core.is_halted());
        assert!(
            quiet_with_wake,
            "a 200-cycle load must produce quiescent ticks with a known wake"
        );
    }

    #[test]
    fn swap_thread_preserves_architectural_state() {
        let mut b = ProgramBuilder::new("first");
        b.li(Reg::X1, 77);
        b.halt();
        let p1 = b.build().unwrap();
        let cfg = SystemConfig::paper_default();
        let mut core = OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::default();
        core.swap_thread(Some(ThreadContext::new(p1, 0)));
        let mut events = Vec::new();
        let mut now = Cycle::ZERO;
        while !core.is_halted() && now.raw() < 10_000 {
            core.tick(now, &mut mem, &mut events);
            now += 1;
        }
        let saved = core.swap_thread(None).expect("context returned");
        assert_eq!(saved.regs.read(Reg::X1), 77);
        assert!(saved.halted);
        assert!(core.is_halted());
    }

    #[test]
    fn run_to_halt_times_out_on_infinite_loops() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.here();
        b.jump(top);
        let p = b.build().unwrap();
        let cfg = SystemConfig::paper_default();
        let mut core = OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::default();
        let result = core.run_to_halt(ThreadContext::new(p, 0), &mut mem, 5_000);
        assert!(result.is_err());
    }

    #[test]
    fn stats_convert_to_stat_set() {
        let mut b = ProgramBuilder::new("stats");
        b.li(Reg::X1, 1);
        b.halt();
        let p = b.build().unwrap();
        let (core, _, _) = run_program(&p);
        let set = core.stats().to_stat_set("core0");
        assert!(set.counter("core0.committed") >= 2);
        assert!(set.scalar("core0.ipc").is_some());
    }
}
