//! The out-of-order pipeline.
//!
//! [`OooCore`] is an execute-at-issue out-of-order timing model. Instructions
//! are fetched along the predicted path, dispatched into a reorder buffer,
//! executed once their operands are available and a functional unit is free,
//! and retired in program order. Wrong-path instructions genuinely execute —
//! including their memory accesses, which go through the pluggable
//! [`MemoryModel`] — and are squashed when the mispredicted branch resolves.
//! Stores update functional memory only at commit, so architectural state is
//! always correct; the speculative damage the paper studies is confined to the
//! cache side, exactly as on real hardware.

use std::collections::VecDeque;

use simkit::addr::VirtAddr;
use simkit::config::{PipelineConfig, SystemConfig};
use simkit::cycles::Cycle;
use simkit::stats::StatSet;

use uarch_isa::inst::{eval_alu, eval_branch, eval_fpu, InstClass, Instruction, MemWidth};
use uarch_isa::prog::INST_BYTES;
use uarch_isa::reg::Reg;

use crate::branch::{BranchPredictor, BranchUpdate};
use crate::context::ThreadContext;
use crate::events::CoreEvent;
use crate::memmodel::{MemAccessCtx, MemOutcome, MemoryModel};

/// Execution status of a reorder-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Dispatched, waiting for operands or a functional unit.
    Waiting,
    /// Executing; the result is available at the contained cycle.
    Executing(Cycle),
    /// Finished executing.
    Done,
}

/// One reorder-buffer entry.
#[derive(Debug, Clone)]
#[allow(dead_code)] // `seq` and `predicted_taken` are kept for debugging and future recovery logic
struct RobEntry {
    seq: u64,
    pc: usize,
    inst: Instruction,
    status: Status,
    result: Option<u64>,
    /// Computed virtual address for memory operations.
    mem_addr: Option<VirtAddr>,
    /// Value to be stored (for stores/atomics), captured at execute.
    store_data: Option<u64>,
    /// The memory model asked for this access to be retried later.
    mem_retry: bool,
    /// Whether the load's value was forwarded from an older in-flight store.
    forwarded: bool,
    /// Fetch-time prediction: the instruction index fetched after this one.
    predicted_next: usize,
    /// Fetch-time direction prediction for conditional branches.
    predicted_taken: bool,
    /// Resolved actual next PC (valid once `Done` for control flow).
    actual_next: usize,
}

impl RobEntry {
    fn is_done(&self) -> bool {
        matches!(self.status, Status::Done)
    }

    fn is_memory(&self) -> bool {
        self.inst.class().is_memory()
    }

    fn is_load(&self) -> bool {
        matches!(self.inst.class(), InstClass::Load | InstClass::Atomic)
    }

    fn is_store(&self) -> bool {
        matches!(self.inst.class(), InstClass::Store | InstClass::Atomic)
    }

    fn is_branch(&self) -> bool {
        self.inst.class().is_control()
    }
}

/// Statistics accumulated by one core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Cycles this core has been ticked.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed branches (conditional only).
    pub branches: u64,
    /// Mispredicted branches (of any kind) that caused a squash.
    pub mispredictions: u64,
    /// Instructions squashed from the ROB.
    pub squashed: u64,
    /// Loads that were issued speculatively and later squashed.
    pub squashed_loads: u64,
    /// Accesses the memory model asked to retry non-speculatively.
    pub mem_retries: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Converts the statistics into a generic [`StatSet`].
    pub fn to_stat_set(&self, prefix: &str) -> StatSet {
        let mut s = StatSet::new();
        s.add(&format!("{prefix}.cycles"), self.cycles);
        s.add(&format!("{prefix}.committed"), self.committed);
        s.add(&format!("{prefix}.loads"), self.loads);
        s.add(&format!("{prefix}.stores"), self.stores);
        s.add(&format!("{prefix}.branches"), self.branches);
        s.add(&format!("{prefix}.mispredictions"), self.mispredictions);
        s.add(&format!("{prefix}.squashed"), self.squashed);
        s.add(&format!("{prefix}.squashed_loads"), self.squashed_loads);
        s.add(&format!("{prefix}.mem_retries"), self.mem_retries);
        s.set_scalar(&format!("{prefix}.ipc"), self.ipc());
        s
    }
}

/// The out-of-order core.
pub struct OooCore {
    core_id: usize,
    pipeline: PipelineConfig,
    predictor: BranchPredictor,
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    thread: Option<ThreadContext>,
    /// Speculative fetch program counter (instruction index).
    fetch_pc: usize,
    /// Front end is refilling until this cycle (misprediction or I-miss).
    fetch_stalled_until: Cycle,
    /// Fetch stops after a halt or running off the program.
    fetch_halted: bool,
    /// Last instruction-cache line fetched, to charge I-fetch once per line.
    last_fetch_line: Option<u64>,
    /// Commit is stalled until this cycle (memory model commit charges).
    commit_stalled_until: Cycle,
    halted: bool,
    stats: CoreStats,
}

impl OooCore {
    /// Creates a core with the given id using the pipeline and predictor
    /// parameters from `config`.
    pub fn new(core_id: usize, config: &SystemConfig) -> Self {
        OooCore {
            core_id,
            pipeline: config.pipeline,
            predictor: BranchPredictor::new(&config.branch_predictor),
            rob: VecDeque::new(),
            next_seq: 0,
            thread: None,
            fetch_pc: 0,
            fetch_stalled_until: Cycle::ZERO,
            fetch_halted: false,
            last_fetch_line: None,
            commit_stalled_until: Cycle::ZERO,
            halted: true,
            stats: CoreStats::default(),
        }
    }

    /// This core's identifier.
    pub fn id(&self) -> usize {
        self.core_id
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Whether the core currently has no runnable thread (idle or halted).
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Read-only access to the running thread's context, if any.
    pub fn thread(&self) -> Option<&ThreadContext> {
        self.thread.as_ref()
    }

    /// Mutable access to the branch predictor (the OS model flushes the BTB on
    /// context switches when that mitigation is enabled).
    pub fn predictor_mut(&mut self) -> &mut BranchPredictor {
        &mut self.predictor
    }

    /// Installs a thread on this core, discarding any in-flight speculative
    /// work, and returns the previously running thread's context.
    pub fn swap_thread(&mut self, new_thread: Option<ThreadContext>) -> Option<ThreadContext> {
        self.rob.clear();
        self.last_fetch_line = None;
        let old = self.thread.take();
        self.thread = new_thread;
        if let Some(t) = &self.thread {
            self.fetch_pc = t.pc;
            self.fetch_halted = t.halted;
            self.halted = t.halted;
        } else {
            self.halted = true;
            self.fetch_halted = true;
        }
        old
    }

    /// Runs a single-threaded program to completion on this core with the
    /// given memory model, returning the cycle at which it halted.
    ///
    /// # Errors
    /// Returns `Err(cycles_simulated)` if the program does not halt within
    /// `max_cycles`.
    pub fn run_to_halt(
        &mut self,
        thread: ThreadContext,
        mem: &mut dyn MemoryModel,
        max_cycles: u64,
    ) -> Result<u64, u64> {
        self.swap_thread(Some(thread));
        let mut now = Cycle::ZERO;
        while !self.halted && now.raw() < max_cycles {
            self.tick(now, mem);
            now += 1;
        }
        if self.halted {
            Ok(now.raw())
        } else {
            Err(now.raw())
        }
    }

    /// Advances the core by one cycle. Returns the architectural events that
    /// committed during this cycle.
    pub fn tick(&mut self, now: Cycle, mem: &mut dyn MemoryModel) -> Vec<CoreEvent> {
        if self.thread.is_none() || self.halted {
            return Vec::new();
        }
        self.stats.cycles += 1;
        mem.tick(self.core_id, now);

        let events = self.commit_stage(now, mem);
        self.complete_stage(now, mem);
        self.issue_stage(now, mem);
        self.fetch_stage(now, mem);
        events
    }

    // ------------------------------------------------------------------
    // commit
    // ------------------------------------------------------------------

    fn commit_stage(&mut self, now: Cycle, mem: &mut dyn MemoryModel) -> Vec<CoreEvent> {
        let mut events = Vec::new();
        if now < self.commit_stalled_until {
            return events;
        }
        let width = self.pipeline.width;
        for _ in 0..width {
            let Some(head) = self.rob.front() else { break };
            if !head.is_done() {
                break;
            }
            let entry = self.rob.pop_front().expect("head exists");
            self.retire_entry(&entry, now, mem, &mut events);
            if self.halted || now < self.commit_stalled_until {
                break;
            }
        }
        events
    }

    fn retire_entry(
        &mut self,
        entry: &RobEntry,
        now: Cycle,
        mem: &mut dyn MemoryModel,
        events: &mut Vec<CoreEvent>,
    ) {
        let entry_pc_addr = self.pc_addr(entry.pc);
        let thread = self.thread.as_mut().expect("running thread");
        self.stats.committed += 1;

        // Architectural register update.
        if let (Some(dest), Some(result)) = (entry.inst.dest(), entry.result) {
            thread.regs.write(dest, result);
        }

        // Memory effects and commit-time notifications.
        if entry.is_memory() {
            let addr = entry.mem_addr.expect("memory op has an address");
            if entry.is_store() {
                let data = entry.store_data.expect("store has data");
                let width = match entry.inst {
                    Instruction::Store { width, .. } => width,
                    _ => MemWidth::Double,
                };
                thread.memory.borrow_mut().write(addr, data, width);
                self.stats.stores += 1;
            }
            if entry.is_load() {
                self.stats.loads += 1;
            }
            let ctx = MemAccessCtx {
                core: self.core_id,
                vaddr: addr,
                pc: entry_pc_addr,
                when: now,
                speculative: false,
                is_store: entry.is_store(),
                under_unresolved_branch: false,
                addr_tainted_spectre: false,
                addr_tainted_future: false,
            };
            let extra = mem.commit_access(&ctx);
            if extra > 0 {
                self.commit_stalled_until = now.saturating_add(extra);
            }
        }

        if matches!(entry.inst.class(), InstClass::Branch) {
            self.stats.branches += 1;
        }

        // Notify the memory model that the instruction itself committed, so
        // instruction-filter-cache lines can be marked committed (§4.7).
        let fetch_ctx = MemAccessCtx {
            core: self.core_id,
            vaddr: entry_pc_addr,
            pc: entry_pc_addr,
            when: now,
            speculative: false,
            is_store: false,
            under_unresolved_branch: false,
            addr_tainted_spectre: false,
            addr_tainted_future: false,
        };
        mem.commit_fetch(&fetch_ctx);

        // Committed program counter follows the actual path.
        thread.pc = entry.actual_next;

        match entry.inst {
            Instruction::Syscall { code } => events.push(CoreEvent::Syscall(code)),
            Instruction::SandboxEnter => events.push(CoreEvent::SandboxEnter),
            Instruction::SandboxExit => events.push(CoreEvent::SandboxExit),
            Instruction::Halt => {
                thread.halted = true;
                self.halted = true;
                self.fetch_halted = true;
                events.push(CoreEvent::Halted);
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // complete (writeback + branch resolution)
    // ------------------------------------------------------------------

    fn complete_stage(&mut self, now: Cycle, mem: &mut dyn MemoryModel) {
        // Move finished executions to Done, oldest first, resolving branches.
        let mut squash_after: Option<(usize, usize)> = None; // (rob index, redirect pc)
        for idx in 0..self.rob.len() {
            let entry = &self.rob[idx];
            let finished = match entry.status {
                Status::Executing(done_at) => done_at <= now,
                _ => false,
            };
            if !finished {
                continue;
            }
            self.rob[idx].status = Status::Done;
            if self.rob[idx].is_branch() {
                let (mispredicted, redirect) = self.resolve_branch(idx);
                if mispredicted {
                    squash_after = Some((idx, redirect));
                    break;
                }
            }
        }
        if let Some((idx, redirect)) = squash_after {
            self.squash_younger_than(idx, redirect, now, mem);
        }
    }

    /// Resolves the control-flow instruction at ROB index `idx`. Returns
    /// whether it was mispredicted and the correct next instruction index.
    fn resolve_branch(&mut self, idx: usize) -> (bool, usize) {
        let entry = &self.rob[idx];
        let actual_next = entry.actual_next;
        let mispredicted = actual_next != entry.predicted_next;
        let conditional = matches!(entry.inst.class(), InstClass::Branch);
        let taken = match entry.inst {
            Instruction::Branch { .. } => actual_next != entry.pc + 1,
            _ => true,
        };
        let update = BranchUpdate {
            pc: self.pc_addr(entry.pc),
            taken,
            target: actual_next,
            conditional,
        };
        self.predictor.update(&update, mispredicted);
        if mispredicted {
            self.stats.mispredictions += 1;
        }
        (mispredicted, actual_next)
    }

    /// Squashes every ROB entry younger than index `idx` and redirects fetch.
    fn squash_younger_than(
        &mut self,
        idx: usize,
        redirect: usize,
        now: Cycle,
        mem: &mut dyn MemoryModel,
    ) {
        let removed = self.rob.len().saturating_sub(idx + 1);
        if removed > 0 {
            for e in self.rob.iter().skip(idx + 1) {
                self.stats.squashed += 1;
                if e.is_load() && !matches!(e.status, Status::Waiting) {
                    self.stats.squashed_loads += 1;
                }
            }
            self.rob.truncate(idx + 1);
        }
        mem.on_squash(self.core_id, now);
        self.predictor.clear_ras();
        self.fetch_pc = redirect;
        self.fetch_halted = false;
        self.last_fetch_line = None;
        self.fetch_stalled_until = now.saturating_add(self.pipeline.mispredict_penalty);
    }

    // ------------------------------------------------------------------
    // issue / execute
    // ------------------------------------------------------------------

    fn issue_stage(&mut self, now: Cycle, mem: &mut dyn MemoryModel) {
        let mut issued = 0usize;
        let mut int_used = 0usize;
        let mut fp_used = 0usize;
        let mut muldiv_used = 0usize;
        let mut mem_ports_used = 0usize;
        // The instruction window: only the first `iq_entries` waiting entries
        // are candidates for issue.
        let mut window_seen = 0usize;

        for idx in 0..self.rob.len() {
            if issued >= self.pipeline.width {
                break;
            }
            let status = self.rob[idx].status;
            let class = self.rob[idx].inst.class();

            // A serialising instruction blocks younger instructions from
            // issuing until it has finished executing.
            if self.rob[idx].inst.is_serialising() && !self.rob[idx].is_done() && idx > 0 {
                // It may itself execute only at the head (handled below), and
                // nothing younger may proceed.
                if idx == 0 {
                } else if !self.try_issue_at(idx, now, mem) {
                    // fallthrough: still blocks younger entries
                }
                break;
            }

            if matches!(status, Status::Waiting) {
                window_seen += 1;
                if window_seen > self.pipeline.iq_entries {
                    break;
                }
                // Functional unit availability.
                let fu_ok = match class {
                    InstClass::IntAlu
                    | InstClass::Branch
                    | InstClass::Jump
                    | InstClass::Call
                    | InstClass::Return
                    | InstClass::Nop
                    | InstClass::SandboxMarker
                    | InstClass::Syscall
                    | InstClass::Barrier
                    | InstClass::Halt => int_used < self.pipeline.int_alus,
                    InstClass::FpAlu => fp_used < self.pipeline.fp_alus,
                    InstClass::MulDiv => muldiv_used < self.pipeline.mul_div_units,
                    InstClass::Load | InstClass::Store | InstClass::Atomic => mem_ports_used < 4,
                };
                if !fu_ok {
                    continue;
                }
                if self.try_issue_at(idx, now, mem) {
                    issued += 1;
                    match class {
                        InstClass::FpAlu => fp_used += 1,
                        InstClass::MulDiv => muldiv_used += 1,
                        InstClass::Load | InstClass::Store | InstClass::Atomic => {
                            mem_ports_used += 1
                        }
                        _ => int_used += 1,
                    }
                }
            } else if matches!(status, Status::Executing(_)) && self.rob[idx].mem_retry {
                // A previously delayed memory access: retry it (the memory
                // model re-evaluates its condition; at the head it is
                // non-speculative and must succeed).
                if self.try_issue_at(idx, now, mem) {
                    issued += 1;
                    mem_ports_used += 1;
                }
            }
        }
    }

    /// Attempts to execute the entry at ROB index `idx`. Returns whether it
    /// started (or completed) execution this cycle.
    fn try_issue_at(&mut self, idx: usize, now: Cycle, mem: &mut dyn MemoryModel) -> bool {
        let inst = self.rob[idx].inst;
        let class = inst.class();

        // Serialising instructions and atomics execute only at the ROB head.
        if (inst.is_serialising() || matches!(class, InstClass::Atomic)) && idx != 0 {
            return false;
        }
        // A cycle-counter read waits until every older instruction has
        // finished so it observes an accurate time (like lfence; rdtsc).
        if matches!(inst, Instruction::ReadCycle { .. })
            && self.rob.iter().take(idx).any(|e| !e.is_done())
        {
            return false;
        }

        // Gather operand values from the ROB (youngest older producer) or the
        // architectural register file.
        let mut operands = Vec::new();
        for src in inst.sources() {
            match self.operand_value(idx, src) {
                Some(v) => operands.push(v),
                None => return false,
            }
        }

        match class {
            InstClass::Load | InstClass::Store | InstClass::Atomic => {
                self.issue_memory(idx, now, mem, &operands)
            }
            _ => {
                self.issue_non_memory(idx, now, &operands);
                true
            }
        }
    }

    fn issue_non_memory(&mut self, idx: usize, now: Cycle, operands: &[u64]) {
        let entry = &mut self.rob[idx];
        let latency = entry.inst.exec_latency();
        let mut result = None;
        let mut actual_next = entry.pc + 1;
        match entry.inst {
            Instruction::AluReg { op, .. } => result = Some(eval_alu(op, operands[0], operands[1])),
            Instruction::AluImm { op, imm, .. } => {
                result = Some(eval_alu(op, operands[0], imm as u64))
            }
            Instruction::LoadImm { imm, .. } => result = Some(imm),
            Instruction::Fpu { op, .. } => result = Some(eval_fpu(op, operands[0], operands[1])),
            Instruction::Branch { cond, target, .. } => {
                let taken = eval_branch(cond, operands[0], operands[1]);
                actual_next = if taken { target } else { entry.pc + 1 };
            }
            Instruction::Jump { target } => actual_next = target,
            Instruction::JumpIndirect { offset, .. } => {
                actual_next = operands[0].wrapping_add(offset as u64) as usize;
            }
            Instruction::Call { target, .. } => {
                result = Some((entry.pc + 1) as u64);
                actual_next = target;
            }
            Instruction::Return { .. } => actual_next = operands[0] as usize,
            Instruction::ReadCycle { .. } => result = Some(now.raw()),
            _ => {}
        }
        entry.result = result;
        entry.actual_next = actual_next;
        entry.status = Status::Executing(now.saturating_add(latency));
    }

    fn issue_memory(
        &mut self,
        idx: usize,
        now: Cycle,
        mem: &mut dyn MemoryModel,
        operands: &[u64],
    ) -> bool {
        let inst = self.rob[idx].inst;
        // Compute the effective address and (for stores) the data value.
        let (addr, data) = match inst {
            Instruction::Load { offset, .. } => {
                (VirtAddr::new(operands[0].wrapping_add(offset as u64)), None)
            }
            Instruction::Store { offset, .. } => (
                VirtAddr::new(operands[1].wrapping_add(offset as u64)),
                Some(operands[0]),
            ),
            Instruction::AtomicSwap { .. } | Instruction::AtomicAdd { .. } => {
                (VirtAddr::new(operands[1]), Some(operands[0]))
            }
            _ => unreachable!("issue_memory called for non-memory instruction"),
        };

        // Memory disambiguation: a load may not issue past an older store
        // whose address is unknown; if an older store to the same address has
        // its data, forward it.
        let is_load = matches!(inst.class(), InstClass::Load | InstClass::Atomic);
        let mut forwarded_value = None;
        if is_load {
            for older in (0..idx).rev() {
                if !self.rob[older].is_store() {
                    continue;
                }
                match self.rob[older].mem_addr {
                    None => return false, // unknown older store address: wait
                    Some(a) if a == addr => {
                        forwarded_value = self.rob[older].store_data;
                        break;
                    }
                    Some(_) => continue,
                }
            }
        }

        let under_unresolved_branch = self.has_older_unresolved_branch(idx);
        let (ts, tf) = if mem.needs_taint_tracking() {
            self.address_taint(idx)
        } else {
            (false, false)
        };
        let speculative = idx != 0;
        let pc_vaddr = self.pc_addr(self.rob[idx].pc);

        let entry = &mut self.rob[idx];
        entry.mem_addr = Some(addr);
        entry.store_data = data;

        match inst.class() {
            InstClass::Store => {
                // Stores execute (compute address/data) without touching the
                // cache; the write happens at commit. Tell the memory model so
                // it can prefetch the line in shared state if it wants.
                let ctx = MemAccessCtx {
                    core: self.core_id,
                    vaddr: addr,
                    pc: pc_vaddr,
                    when: now,
                    speculative,
                    is_store: true,
                    under_unresolved_branch,
                    addr_tainted_spectre: ts,
                    addr_tainted_future: tf,
                };
                entry.status = Status::Executing(now.saturating_add(1));
                entry.actual_next = entry.pc + 1;
                mem.store_address_ready(&ctx);
                true
            }
            InstClass::Load | InstClass::Atomic => {
                let pc_addr = pc_vaddr;
                let is_atomic = matches!(inst.class(), InstClass::Atomic);
                if let Some(value) = forwarded_value {
                    // Store-to-load forwarding: 1-cycle, no cache access.
                    let entry = &mut self.rob[idx];
                    entry.result = Some(value);
                    entry.forwarded = true;
                    entry.actual_next = entry.pc + 1;
                    entry.status = Status::Executing(now.saturating_add(1));
                    return true;
                }
                let ctx = MemAccessCtx {
                    core: self.core_id,
                    vaddr: addr,
                    pc: pc_addr,
                    when: now,
                    speculative,
                    is_store: is_atomic,
                    under_unresolved_branch,
                    addr_tainted_spectre: ts,
                    addr_tainted_future: tf,
                };
                match mem.load(&ctx) {
                    MemOutcome::Done { latency } => {
                        // Functional read happens now (execute-at-issue).
                        let thread = self.thread.as_ref().expect("running thread");
                        let width = match inst {
                            Instruction::Load { width, .. } => width,
                            _ => MemWidth::Double,
                        };
                        let loaded = thread.memory.borrow().read(addr, width);
                        let entry = &mut self.rob[idx];
                        entry.result = Some(loaded);
                        entry.actual_next = entry.pc + 1;
                        entry.mem_retry = false;
                        entry.status = Status::Executing(now.saturating_add(latency.max(1)));
                        // Atomics perform their read-modify-write functionally
                        // at execute time; they only run at the ROB head, so
                        // this is never speculative.
                        if is_atomic {
                            let thread = self.thread.as_ref().expect("running thread");
                            let new_value = match inst {
                                Instruction::AtomicSwap { .. } => data.unwrap_or(0),
                                Instruction::AtomicAdd { .. } => {
                                    loaded.wrapping_add(data.unwrap_or(0))
                                }
                                _ => unreachable!(),
                            };
                            thread
                                .memory
                                .borrow_mut()
                                .write(addr, new_value, MemWidth::Double);
                            let entry = &mut self.rob[idx];
                            entry.store_data = Some(new_value);
                        }
                        true
                    }
                    MemOutcome::RetryWhenNonSpeculative => {
                        self.stats.mem_retries += 1;
                        let entry = &mut self.rob[idx];
                        entry.mem_retry = true;
                        // Park the entry; it stays "executing" far in the
                        // future and is retried by the issue stage.
                        entry.status = Status::Executing(Cycle::NEVER);
                        entry.actual_next = entry.pc + 1;
                        true
                    }
                }
            }
            _ => unreachable!(),
        }
    }

    /// Looks up the value of `reg` as seen by the entry at ROB index `idx`:
    /// the youngest older producer's result, or the architectural register.
    /// Returns `None` if the producing instruction has not finished.
    fn operand_value(&self, idx: usize, reg: Reg) -> Option<u64> {
        if reg.is_zero() {
            return Some(0);
        }
        for older in (0..idx).rev() {
            if self.rob[older].inst.dest() == Some(reg) {
                return if self.rob[older].is_done()
                    || matches!(self.rob[older].status, Status::Executing(c) if c != Cycle::NEVER)
                {
                    // Execute-at-issue: results exist as soon as the producer
                    // starts executing, but consumers still wait for the
                    // producer's latency through the `Executing` status check
                    // below. To model the dependency correctly we only forward
                    // once the producer is Done.
                    if self.rob[older].is_done() {
                        self.rob[older].result
                    } else {
                        None
                    }
                } else {
                    None
                };
            }
        }
        let thread = self.thread.as_ref()?;
        Some(thread.regs.read(reg))
    }

    /// Computes the taint of entry `idx`'s address operands for speculative
    /// taint tracking (STT): whether any value feeding the address was
    /// produced by an in-flight load that is still "unsafe".
    ///
    /// A source load is unsafe under the *Spectre* attack model while it has
    /// an older unresolved conditional branch, and under the *Futuristic*
    /// model while any older instruction remains in the reorder buffer at all
    /// (conservatively, the load can be squashed — by an interrupt, fault or
    /// ordering violation of anything older — until it reaches the head).
    /// Taint is recomputed every time the access is (re)tried, so it naturally
    /// clears when the source load becomes safe — which is exactly when STT
    /// un-blocks the dependent transmitter.
    fn address_taint(&self, idx: usize) -> (bool, bool) {
        let mut spectre = false;
        let mut future = false;
        let mut visited = vec![false; idx];
        let mut worklist: Vec<usize> = Vec::new();

        let seed = |reg: Reg, worklist: &mut Vec<usize>| {
            if reg.is_zero() {
                return;
            }
            for older in (0..idx).rev() {
                if self.rob[older].inst.dest() == Some(reg) {
                    worklist.push(older);
                    break;
                }
            }
        };
        for src in self.rob[idx].inst.sources() {
            seed(src, &mut worklist);
        }

        while let Some(producer) = worklist.pop() {
            if visited[producer] {
                continue;
            }
            visited[producer] = true;
            if self.rob[producer].is_load() {
                if self.has_older_unresolved_branch(producer) {
                    spectre = true;
                }
                if producer > 0 {
                    future = true;
                }
            }
            // Follow the producer's own operands further up the chain.
            for src in self.rob[producer].inst.sources() {
                if src.is_zero() {
                    continue;
                }
                for older in (0..producer).rev() {
                    if self.rob[older].inst.dest() == Some(src) {
                        if !visited[older] {
                            worklist.push(older);
                        }
                        break;
                    }
                }
            }
            if spectre && future {
                break;
            }
        }
        (spectre, future)
    }

    /// Whether any conditional branch older than ROB index `idx` has not yet
    /// resolved (finished executing).
    fn has_older_unresolved_branch(&self, idx: usize) -> bool {
        self.rob
            .iter()
            .take(idx)
            .any(|e| e.is_branch() && !e.is_done())
    }

    // ------------------------------------------------------------------
    // fetch / dispatch
    // ------------------------------------------------------------------

    fn fetch_stage(&mut self, now: Cycle, mem: &mut dyn MemoryModel) {
        if self.fetch_halted || now < self.fetch_stalled_until {
            return;
        }
        let line_bytes = 64;
        for _ in 0..self.pipeline.width {
            if self.rob.len() >= self.pipeline.rob_entries {
                break;
            }
            let loads_in_flight = self.rob.iter().filter(|e| e.is_load()).count();
            let stores_in_flight = self.rob.iter().filter(|e| e.is_store()).count();
            let Some(thread) = self.thread.as_ref() else {
                break;
            };
            let Some(inst) = thread.program.fetch(self.fetch_pc) else {
                self.fetch_halted = true;
                break;
            };
            if inst.class().is_memory() {
                if matches!(inst.class(), InstClass::Load | InstClass::Atomic)
                    && loads_in_flight >= self.pipeline.lq_entries
                {
                    break;
                }
                if matches!(inst.class(), InstClass::Store | InstClass::Atomic)
                    && stores_in_flight >= self.pipeline.sq_entries
                {
                    break;
                }
            }

            // Instruction-cache timing, charged once per new line.
            let fetch_addr = thread.program.inst_addr(self.fetch_pc);
            let fetch_line = fetch_addr.raw() / line_bytes;
            if self.last_fetch_line != Some(fetch_line) {
                let ctx = MemAccessCtx {
                    core: self.core_id,
                    vaddr: fetch_addr,
                    pc: fetch_addr,
                    when: now,
                    speculative: !self.rob.is_empty(),
                    is_store: false,
                    under_unresolved_branch: self.has_older_unresolved_branch(self.rob.len()),
                    addr_tainted_spectre: false,
                    addr_tainted_future: false,
                };
                let latency = match mem.fetch_instruction(&ctx) {
                    MemOutcome::Done { latency } => latency,
                    MemOutcome::RetryWhenNonSpeculative => 1,
                };
                self.last_fetch_line = Some(fetch_line);
                if latency > 1 {
                    self.fetch_stalled_until = now.saturating_add(latency);
                    break;
                }
            }

            // Branch prediction decides the next fetch PC.
            let pc = self.fetch_pc;
            let pc_vaddr = self.pc_addr(pc);
            let (predicted_next, predicted_taken) = match inst {
                Instruction::Branch { target, .. } => {
                    let taken = self.predictor.predict_direction(pc_vaddr);
                    (if taken { target } else { pc + 1 }, taken)
                }
                Instruction::Jump { target } => (target, true),
                Instruction::JumpIndirect { .. } => {
                    let target = self
                        .predictor
                        .predict_indirect_target(pc_vaddr)
                        .unwrap_or(pc + 1);
                    (target, true)
                }
                Instruction::Call { target, .. } => {
                    self.predictor.push_return(pc + 1);
                    (target, true)
                }
                Instruction::Return { .. } => {
                    let target = self
                        .predictor
                        .predict_return()
                        .or_else(|| self.predictor.predict_indirect_target(pc_vaddr))
                        .unwrap_or(pc + 1);
                    (target, true)
                }
                Instruction::Halt => (pc + 1, false),
                _ => (pc + 1, false),
            };

            let entry = RobEntry {
                seq: self.next_seq,
                pc,
                inst,
                status: Status::Waiting,
                result: None,
                mem_addr: None,
                store_data: None,
                mem_retry: false,
                forwarded: false,
                predicted_next,
                predicted_taken,
                actual_next: pc + 1,
            };
            self.next_seq += 1;
            self.rob.push_back(entry);
            self.fetch_pc = predicted_next;

            if matches!(inst, Instruction::Halt) {
                // Stop fetching past a halt on the speculative path.
                self.fetch_halted = true;
                break;
            }
        }
    }

    fn pc_addr(&self, pc: usize) -> VirtAddr {
        match &self.thread {
            Some(t) => t.program.inst_addr(pc),
            None => VirtAddr::new(pc as u64 * INST_BYTES),
        }
    }
}

impl std::fmt::Debug for OooCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OooCore")
            .field("core_id", &self.core_id)
            .field("rob_occupancy", &self.rob.len())
            .field("fetch_pc", &self.fetch_pc)
            .field("halted", &self.halted)
            .field("committed", &self.stats.committed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmodel::FixedLatencyMemory;
    use uarch_isa::interp::Interpreter;
    use uarch_isa::prog::{Program, ProgramBuilder};
    use uarch_isa::reg::Reg;

    fn run_program(program: &Program) -> (OooCore, ThreadContext, u64) {
        let cfg = SystemConfig::paper_default();
        let mut core = OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::default();
        let thread = ThreadContext::new(program.clone(), 0);
        let cycles = core
            .run_to_halt(thread, &mut mem, 2_000_000)
            .expect("program should halt");
        let finished = core.swap_thread(None).expect("thread present");
        (core, finished, cycles)
    }

    /// Runs a program on both the functional interpreter and the OoO core and
    /// asserts the architectural register results match.
    fn assert_matches_interpreter(program: &Program, regs_to_check: &[Reg]) {
        let mut interp = Interpreter::new(program);
        let golden = interp.run(5_000_000).expect("interpreter halts");
        let (_, finished, _) = run_program(program);
        for reg in regs_to_check {
            assert_eq!(
                finished.regs.read(*reg),
                golden.regs.read(*reg),
                "architectural mismatch in {reg}"
            );
        }
    }

    #[test]
    fn straight_line_arithmetic_matches_interpreter() {
        let mut b = ProgramBuilder::new("alu");
        b.li(Reg::X1, 10);
        b.li(Reg::X2, 3);
        b.mul(Reg::X3, Reg::X1, Reg::X2);
        b.sub(Reg::X4, Reg::X3, Reg::X2);
        b.addi(Reg::X5, Reg::X4, 100);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X3, Reg::X4, Reg::X5]);
    }

    #[test]
    fn loop_with_memory_matches_interpreter() {
        // Sum an array of 32 values through loads in a loop.
        let mut b = ProgramBuilder::new("sum-array");
        let values: Vec<u64> = (0..32).map(|i| i * 7 + 1).collect();
        b.data_u64(VirtAddr::new(0x1_0000), &values);
        let top = b.new_label();
        b.li(Reg::X1, 0x1_0000); // base
        b.li(Reg::X2, 0); // index
        b.li(Reg::X3, 0); // sum
        b.bind_label(top);
        b.shli(Reg::X4, Reg::X2, 3);
        b.add(Reg::X4, Reg::X1, Reg::X4);
        b.load(Reg::X5, Reg::X4, 0);
        b.add(Reg::X3, Reg::X3, Reg::X5);
        b.addi(Reg::X2, Reg::X2, 1);
        b.blt_imm(Reg::X2, 32, top);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X3]);
        let (_, finished, _) = run_program(&p);
        assert_eq!(finished.regs.read(Reg::X3), values.iter().sum::<u64>());
    }

    #[test]
    fn stores_then_loads_round_trip() {
        let mut b = ProgramBuilder::new("store-load");
        b.li(Reg::X1, 0x2_0000);
        b.li(Reg::X2, 1234);
        b.store(Reg::X2, Reg::X1, 0);
        b.load(Reg::X3, Reg::X1, 0);
        b.addi(Reg::X3, Reg::X3, 1);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X3]);
        let (_, finished, _) = run_program(&p);
        assert_eq!(finished.regs.read(Reg::X3), 1235);
    }

    #[test]
    fn calls_and_returns_match_interpreter() {
        let mut b = ProgramBuilder::new("calls");
        let func = b.new_label();
        let done = b.new_label();
        b.li(Reg::X1, 1);
        b.call(func, Reg::X30);
        b.call(func, Reg::X30);
        b.jump(done);
        b.bind_label(func);
        b.shli(Reg::X1, Reg::X1, 2);
        b.ret(Reg::X30);
        b.bind_label(done);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X1]);
    }

    #[test]
    fn data_dependent_branches_match_interpreter() {
        // A loop whose branch direction depends on loaded data, with an
        // irregular pattern so mispredictions occur.
        let mut b = ProgramBuilder::new("branchy");
        let values: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) % 7).collect();
        b.data_u64(VirtAddr::new(0x3_0000), &values);
        let top = b.new_label();
        let skip = b.new_label();
        b.li(Reg::X1, 0x3_0000);
        b.li(Reg::X2, 0);
        b.li(Reg::X3, 0);
        b.bind_label(top);
        b.shli(Reg::X4, Reg::X2, 3);
        b.add(Reg::X4, Reg::X1, Reg::X4);
        b.load(Reg::X5, Reg::X4, 0);
        b.li(Reg::X6, 3);
        b.blt(Reg::X5, Reg::X6, skip);
        b.addi(Reg::X3, Reg::X3, 1);
        b.bind_label(skip);
        b.addi(Reg::X2, Reg::X2, 1);
        b.blt_imm(Reg::X2, 64, top);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X3]);
        let (core, _, _) = run_program(&p);
        assert!(
            core.stats().mispredictions > 0,
            "irregular branches should mispredict"
        );
        assert!(
            core.stats().squashed > 0,
            "mispredictions should squash wrong-path work"
        );
    }

    #[test]
    fn wrong_path_loads_reach_the_memory_model() {
        // Train a branch not-taken, then make it taken once: the wrong-path
        // load behind the mispredicted branch must reach the memory model and
        // then be squashed.
        let mut b = ProgramBuilder::new("wrong-path");
        b.data_u64(VirtAddr::new(0x9000), &[0]);
        let top = b.new_label();
        let skip = b.new_label();
        let after = b.new_label();
        b.li(Reg::X1, 0);
        b.li(Reg::X9, 0x9000);
        b.bind_label(top);
        // if X1 < 20 skip the "secret" load, else fall through to it.
        b.li(Reg::X2, 20);
        b.blt(Reg::X1, Reg::X2, skip);
        b.load(Reg::X3, Reg::X9, 0); // executed speculatively when mispredicted
        b.jump(after);
        b.bind_label(skip);
        b.nop();
        b.bind_label(after);
        b.addi(Reg::X1, Reg::X1, 1);
        b.blt_imm(Reg::X1, 24, top);
        b.halt();
        let p = b.build().unwrap();
        let (core, _, _) = run_program(&p);
        assert!(core.stats().mispredictions > 0);
        // The functional result is unaffected by wrong-path execution.
        assert_matches_interpreter(&p, &[Reg::X1, Reg::X3]);
    }

    #[test]
    fn rdcycle_reads_increase_monotonically() {
        let mut b = ProgramBuilder::new("rdcycle");
        b.rdcycle(Reg::X1);
        b.li(Reg::X5, 0x4_0000);
        b.load(Reg::X6, Reg::X5, 0);
        b.add(Reg::X7, Reg::X6, Reg::X6);
        b.rdcycle(Reg::X2);
        b.sub(Reg::X3, Reg::X2, Reg::X1);
        b.halt();
        let p = b.build().unwrap();
        let (_, finished, _) = run_program(&p);
        let delta = finished.regs.read(Reg::X3);
        assert!(
            delta > 0,
            "the second rdcycle must observe later time than the first"
        );
        assert!((delta as i64) > 0);
    }

    #[test]
    fn atomics_are_executed_at_the_head_and_update_memory() {
        let mut b = ProgramBuilder::new("atomic");
        b.data_u64(VirtAddr::new(0x5000), &[10]);
        b.li(Reg::X1, 0x5000);
        b.li(Reg::X2, 5);
        b.amoadd(Reg::X3, Reg::X2, Reg::X1);
        b.load(Reg::X4, Reg::X1, 0);
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X3, Reg::X4]);
        let (_, finished, _) = run_program(&p);
        assert_eq!(finished.regs.read(Reg::X3), 10);
        assert_eq!(finished.regs.read(Reg::X4), 15);
    }

    #[test]
    fn spec_barrier_and_syscall_programs_complete() {
        let mut b = ProgramBuilder::new("serialising");
        b.li(Reg::X1, 1);
        b.spec_barrier();
        b.addi(Reg::X1, Reg::X1, 1);
        b.syscall(7);
        b.addi(Reg::X1, Reg::X1, 1);
        b.sandbox_enter();
        b.addi(Reg::X1, Reg::X1, 1);
        b.sandbox_exit();
        b.halt();
        let p = b.build().unwrap();
        assert_matches_interpreter(&p, &[Reg::X1]);
    }

    #[test]
    fn core_reports_committed_events() {
        let mut b = ProgramBuilder::new("events");
        b.syscall(3);
        b.sandbox_enter();
        b.sandbox_exit();
        b.halt();
        let p = b.build().unwrap();
        let cfg = SystemConfig::paper_default();
        let mut core = OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::default();
        core.swap_thread(Some(ThreadContext::new(p, 0)));
        let mut seen = Vec::new();
        let mut now = Cycle::ZERO;
        while !core.is_halted() && now.raw() < 10_000 {
            seen.extend(core.tick(now, &mut mem));
            now += 1;
        }
        assert_eq!(
            seen,
            vec![
                CoreEvent::Syscall(3),
                CoreEvent::SandboxEnter,
                CoreEvent::SandboxExit,
                CoreEvent::Halted
            ]
        );
    }

    #[test]
    fn ipc_is_positive_and_bounded_by_width() {
        let mut b = ProgramBuilder::new("ipc");
        let top = b.new_label();
        b.li(Reg::X1, 0);
        b.bind_label(top);
        for _ in 0..8 {
            b.addi(Reg::X2, Reg::X2, 1);
        }
        b.addi(Reg::X1, Reg::X1, 1);
        b.blt_imm(Reg::X1, 200, top);
        b.halt();
        let p = b.build().unwrap();
        let (core, _, _) = run_program(&p);
        let ipc = core.stats().ipc();
        assert!(
            ipc > 0.5,
            "simple ALU loop should achieve reasonable IPC, got {ipc}"
        );
        assert!(ipc <= 8.0, "IPC cannot exceed the commit width");
    }

    #[test]
    fn swap_thread_preserves_architectural_state() {
        let mut b = ProgramBuilder::new("first");
        b.li(Reg::X1, 77);
        b.halt();
        let p1 = b.build().unwrap();
        let cfg = SystemConfig::paper_default();
        let mut core = OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::default();
        core.swap_thread(Some(ThreadContext::new(p1, 0)));
        let mut now = Cycle::ZERO;
        while !core.is_halted() && now.raw() < 10_000 {
            core.tick(now, &mut mem);
            now += 1;
        }
        let saved = core.swap_thread(None).expect("context returned");
        assert_eq!(saved.regs.read(Reg::X1), 77);
        assert!(saved.halted);
        assert!(core.is_halted());
    }

    #[test]
    fn run_to_halt_times_out_on_infinite_loops() {
        let mut b = ProgramBuilder::new("spin");
        let top = b.here();
        b.jump(top);
        let p = b.build().unwrap();
        let cfg = SystemConfig::paper_default();
        let mut core = OooCore::new(0, &cfg);
        let mut mem = FixedLatencyMemory::default();
        let result = core.run_to_halt(ThreadContext::new(p, 0), &mut mem, 5_000);
        assert!(result.is_err());
    }

    #[test]
    fn stats_convert_to_stat_set() {
        let mut b = ProgramBuilder::new("stats");
        b.li(Reg::X1, 1);
        b.halt();
        let p = b.build().unwrap();
        let (core, _, _) = run_program(&p);
        let set = core.stats().to_stat_set("core0");
        assert!(set.counter("core0.committed") >= 2);
        assert!(set.scalar("core0.ipc").is_some());
    }
}
