//! Architectural thread context.
//!
//! A [`ThreadContext`] is everything the OS needs to schedule a software
//! thread onto a core: the program it runs, its architectural registers, its
//! program counter, and a handle to its (possibly shared) functional data
//! memory. Threads of the same process share one [`SharedMemory`], which is
//! how the Parsec-like multithreaded workloads and the attacker/victim
//! shared-memory litmus tests are expressed.

use std::cell::RefCell;
use std::rc::Rc;

use simkit::addr::VirtAddr;
use uarch_isa::inst::MemWidth;
use uarch_isa::mem::SparseMemory;
use uarch_isa::prog::Program;
use uarch_isa::reg::{Reg, RegFile};

/// A functional data memory shared between the threads of one process.
///
/// The simulation is single-threaded, so interior mutability through
/// `Rc<RefCell<..>>` is sufficient and keeps the core free of locking.
pub type SharedMemory = Rc<RefCell<SparseMemory>>;

/// Creates a fresh [`SharedMemory`] preloaded with a program's data segments.
pub fn shared_memory_for(program: &Program) -> SharedMemory {
    let mut mem = SparseMemory::new();
    for seg in program.data_segments() {
        mem.write_bytes(seg.addr, &seg.bytes);
    }
    Rc::new(RefCell::new(mem))
}

/// The architectural state of one software thread.
#[derive(Debug, Clone)]
pub struct ThreadContext {
    /// The program this thread executes.
    pub program: Program,
    /// Committed architectural registers.
    pub regs: RegFile,
    /// Committed program counter (instruction index).
    pub pc: usize,
    /// Functional data memory (shared with sibling threads of the process).
    pub memory: SharedMemory,
    /// Identifier of the owning process (protection domain).
    pub process_id: usize,
    /// Whether the thread has halted.
    pub halted: bool,
}

impl ThreadContext {
    /// Creates a context at the program's entry point with fresh private
    /// memory initialised from the program's data segments.
    pub fn new(program: Program, process_id: usize) -> Self {
        let memory = shared_memory_for(&program);
        ThreadContext {
            program,
            regs: RegFile::new(),
            pc: 0,
            memory,
            process_id,
            halted: false,
        }
    }

    /// Creates a context sharing an existing memory (a sibling thread of the
    /// same process), starting at instruction index `entry`.
    pub fn with_shared_memory(
        program: Program,
        process_id: usize,
        memory: SharedMemory,
        entry: usize,
    ) -> Self {
        ThreadContext {
            program,
            regs: RegFile::new(),
            pc: entry,
            memory,
            process_id,
            halted: false,
        }
    }

    /// Sets a register (used to pass per-thread arguments such as thread ids).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.regs.write(reg, value);
    }

    /// Reads a 64-bit value from this thread's functional memory.
    pub fn read_memory(&self, addr: VirtAddr) -> u64 {
        self.memory.borrow().read(addr, MemWidth::Double)
    }

    /// Writes a 64-bit value into this thread's functional memory.
    pub fn write_memory(&mut self, addr: VirtAddr, value: u64) {
        self.memory
            .borrow_mut()
            .write(addr, value, MemWidth::Double);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::prog::ProgramBuilder;

    fn trivial_program() -> Program {
        let mut b = ProgramBuilder::new("trivial");
        b.data_u64(VirtAddr::new(0x1000), &[42]);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn new_context_loads_data_segments() {
        let ctx = ThreadContext::new(trivial_program(), 0);
        assert_eq!(ctx.read_memory(VirtAddr::new(0x1000)), 42);
        assert_eq!(ctx.pc, 0);
        assert!(!ctx.halted);
    }

    #[test]
    fn sibling_threads_share_memory() {
        let program = trivial_program();
        let memory = shared_memory_for(&program);
        let mut a = ThreadContext::with_shared_memory(program.clone(), 1, memory.clone(), 0);
        let b = ThreadContext::with_shared_memory(program, 1, memory, 0);
        a.write_memory(VirtAddr::new(0x2000), 7);
        assert_eq!(b.read_memory(VirtAddr::new(0x2000)), 7);
    }

    #[test]
    fn registers_can_be_preset() {
        let mut ctx = ThreadContext::new(trivial_program(), 0);
        ctx.set_reg(Reg::X5, 99);
        assert_eq!(ctx.regs.read(Reg::X5), 99);
    }
}
