//! Branch prediction: tournament predictor, branch target buffer and return
//! address stack (Table 1 of the paper).
//!
//! The predictor is the mechanism Spectre variant 1 abuses: attack code trains
//! a conditional branch to be predicted taken (or not taken) so that the
//! victim executes down the wrong path speculatively. The tables here are
//! deliberately conventional — 2-bit saturating counters, a global history
//! register, a chooser — so that the training behaviour the attacks rely on is
//! realistic.

use simkit::addr::VirtAddr;
use simkit::config::BranchPredictorConfig;

/// A 2-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Counter2(u8);

impl Counter2 {
    fn taken(self) -> bool {
        self.0 >= 2
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// The prediction produced for one fetched control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Whether a conditional branch is predicted taken (always true for
    /// unconditional control flow).
    pub taken: bool,
    /// Predicted target instruction index, if the predictor has one. Direct
    /// branches know their target from the instruction; indirect branches and
    /// returns rely on this field.
    pub target: Option<usize>,
}

/// The information fed back to the predictor when a branch resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchUpdate {
    /// PC (as a virtual address) of the branch.
    pub pc: VirtAddr,
    /// Whether the branch was actually taken.
    pub taken: bool,
    /// The actual target instruction index.
    pub target: usize,
    /// Whether the instruction is a conditional branch (trains the direction
    /// tables) as opposed to an unconditional jump/call/return.
    pub conditional: bool,
}

/// Tournament branch predictor with BTB and return-address stack.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    local: Vec<Counter2>,
    local_history: Vec<u16>,
    global: Vec<Counter2>,
    chooser: Vec<Counter2>,
    global_history: u64,
    btb: Vec<Option<(u64, usize)>>,
    ras: Vec<usize>,
    ras_capacity: usize,
    lookups: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with the table sizes from `config`.
    pub fn new(config: &BranchPredictorConfig) -> Self {
        BranchPredictor {
            local: vec![Counter2::default(); config.local_entries.max(1)],
            local_history: vec![0; config.local_entries.max(1)],
            global: vec![Counter2::default(); config.global_entries.max(1)],
            chooser: vec![Counter2::default(); config.chooser_entries.max(1)],
            global_history: 0,
            btb: vec![None; config.btb_entries.max(1)],
            ras: Vec::new(),
            ras_capacity: config.ras_entries.max(1),
            lookups: 0,
            mispredictions: 0,
        }
    }

    /// Number of direction lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of mispredictions reported via [`BranchPredictor::update`].
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    fn local_index(&self, pc: VirtAddr) -> usize {
        (pc.raw() as usize / 4) % self.local.len()
    }

    fn global_index(&self) -> usize {
        (self.global_history as usize) % self.global.len()
    }

    fn chooser_index(&self, pc: VirtAddr) -> usize {
        (pc.raw() as usize / 4) % self.chooser.len()
    }

    fn btb_index(&self, pc: VirtAddr) -> usize {
        (pc.raw() as usize / 4) % self.btb.len()
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict_direction(&mut self, pc: VirtAddr) -> bool {
        self.lookups += 1;
        let local_idx = self.local_index(pc);
        let history = self.local_history[local_idx] as usize % self.local.len();
        let local_pred = self.local[history].taken();
        let global_pred = self.global[self.global_index()].taken();
        let use_global = self.chooser[self.chooser_index(pc)].taken();
        if use_global {
            global_pred
        } else {
            local_pred
        }
    }

    /// Looks up the predicted target for an indirect branch at `pc`.
    pub fn predict_indirect_target(&mut self, pc: VirtAddr) -> Option<usize> {
        let entry = self.btb[self.btb_index(pc)];
        match entry {
            Some((tag, target)) if tag == pc.raw() => Some(target),
            _ => None,
        }
    }

    /// Pushes a return address (instruction index) on a call.
    pub fn push_return(&mut self, return_index: usize) {
        if self.ras.len() >= self.ras_capacity {
            self.ras.remove(0);
        }
        self.ras.push(return_index);
    }

    /// Pops the predicted return target on a return instruction.
    pub fn predict_return(&mut self) -> Option<usize> {
        self.ras.pop()
    }

    /// Trains the predictor with the resolved outcome of a branch and records
    /// whether the earlier prediction (`predicted_taken`, `predicted_target`)
    /// was wrong.
    pub fn update(&mut self, update: &BranchUpdate, mispredicted: bool) {
        if mispredicted {
            self.mispredictions += 1;
        }
        if update.conditional {
            let local_idx = self.local_index(update.pc);
            let history_idx = self.local_history[local_idx] as usize % self.local.len();
            let local_correct = self.local[history_idx].taken() == update.taken;
            let global_correct = self.global[self.global_index()].taken() == update.taken;

            self.local[history_idx].update(update.taken);
            let g_idx = self.global_index();
            self.global[g_idx].update(update.taken);

            // Chooser moves toward whichever component was right.
            if local_correct != global_correct {
                let c_idx = self.chooser_index(update.pc);
                self.chooser[c_idx].update(global_correct);
            }

            // Update histories.
            self.local_history[local_idx] =
                (self.local_history[local_idx] << 1) | u16::from(update.taken);
            self.global_history = (self.global_history << 1) | u64::from(update.taken);
        }
        if update.taken {
            let idx = self.btb_index(update.pc);
            self.btb[idx] = Some((update.pc.raw(), update.target));
        }
    }

    /// Clears the return-address stack (done on pipeline squash recovery in a
    /// simplified way: the RAS contents after a squash are unreliable).
    pub fn clear_ras(&mut self) {
        self.ras.clear();
    }

    /// Invalidates the branch-target buffer. Recent commodity hardware flushes
    /// or partitions the BTB on context switches to mitigate Spectre variant 2
    /// (the paper assumes this is present, §4.9); the OS model invokes this on
    /// context switches when that mitigation is enabled.
    pub fn flush_btb(&mut self) {
        for e in &mut self.btb {
            *e = None;
        }
        self.ras.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::config::SystemConfig;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(&SystemConfig::paper_default().branch_predictor)
    }

    fn update(pc: u64, taken: bool, target: usize) -> BranchUpdate {
        BranchUpdate {
            pc: VirtAddr::new(pc),
            taken,
            target,
            conditional: true,
        }
    }

    #[test]
    fn repeated_taken_branch_becomes_predicted_taken() {
        let mut p = predictor();
        let pc = VirtAddr::new(0x400);
        // Enough iterations for the local history register to saturate so the
        // same pattern-table entry is trained repeatedly.
        for _ in 0..48 {
            let predicted = p.predict_direction(pc);
            p.update(&update(0x400, true, 10), !predicted);
        }
        assert!(
            p.predict_direction(pc),
            "predictor should learn an always-taken branch"
        );
    }

    #[test]
    fn training_then_flipping_direction_mispredicts_once() {
        let mut p = predictor();
        let pc = VirtAddr::new(0x800);
        // Train strongly not-taken.
        for _ in 0..16 {
            let predicted = p.predict_direction(pc);
            p.update(&update(0x800, false, 5), predicted);
        }
        assert!(!p.predict_direction(pc));
        // The Spectre-style "flip": the next taken execution is mispredicted.
        let predicted = p.predict_direction(pc);
        assert!(
            !predicted,
            "the trained direction must be predicted, enabling the attack window"
        );
        p.update(&update(0x800, true, 5), true);
    }

    #[test]
    fn btb_remembers_indirect_targets() {
        let mut p = predictor();
        let pc = VirtAddr::new(0x1234);
        assert_eq!(p.predict_indirect_target(pc), None);
        p.update(
            &BranchUpdate {
                pc,
                taken: true,
                target: 77,
                conditional: false,
            },
            true,
        );
        assert_eq!(p.predict_indirect_target(pc), Some(77));
        p.flush_btb();
        assert_eq!(p.predict_indirect_target(pc), None);
    }

    #[test]
    fn ras_predicts_matching_returns() {
        let mut p = predictor();
        p.push_return(11);
        p.push_return(22);
        assert_eq!(p.predict_return(), Some(22));
        assert_eq!(p.predict_return(), Some(11));
        assert_eq!(p.predict_return(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let cfg = SystemConfig::paper_default().branch_predictor;
        let mut p = BranchPredictor::new(&cfg);
        for i in 0..cfg.ras_entries + 4 {
            p.push_return(i);
        }
        // The deepest predictions correspond to the newest pushes.
        assert_eq!(p.predict_return(), Some(cfg.ras_entries + 3));
        // After popping everything available, the oldest four are gone.
        let mut popped = 1;
        while p.predict_return().is_some() {
            popped += 1;
        }
        assert_eq!(popped, cfg.ras_entries);
    }

    #[test]
    fn misprediction_counter_tracks_updates() {
        let mut p = predictor();
        p.update(&update(0x10, true, 3), true);
        p.update(&update(0x10, true, 3), false);
        assert_eq!(p.mispredictions(), 1);
        assert!(p.lookups() == 0, "updates alone do not count as lookups");
    }

    #[test]
    fn distinct_pcs_learn_independent_directions() {
        let mut p = predictor();
        let a = VirtAddr::new(0x1000);
        let b = VirtAddr::new(0x2000);
        for _ in 0..12 {
            let pa = p.predict_direction(a);
            p.update(&update(0x1000, true, 1), !pa);
            let pb = p.predict_direction(b);
            p.update(&update(0x2000, false, 2), pb);
        }
        assert!(p.predict_direction(a));
        assert!(!p.predict_direction(b));
    }
}
