//! The interface between the out-of-order core and the (defended) memory
//! system.
//!
//! The core is deliberately ignorant of how the memory hierarchy is protected.
//! Every timing-relevant memory interaction goes through the [`MemoryModel`]
//! trait, which is implemented by the unprotected baseline, by MuonTrap, and
//! by the InvisiSpec and STT comparison defenses in the `defenses` crate. The
//! core tells the model *when* accesses happen, whether they are still
//! speculative, when they commit, when speculation is squashed, and when the
//! protection domain changes; the model answers with latencies and may ask for
//! an access to be retried once it is no longer speculative.

use simkit::addr::VirtAddr;
use simkit::cycles::Cycle;
use simkit::stats::StatSet;

/// Identifies the kind of protection-domain change taking place.
///
/// MuonTrap flushes its filter structures on all of these (§4.3, §4.9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainSwitch {
    /// The OS scheduler switched this core to a different process.
    ContextSwitch,
    /// The running process performed a system call (kernel entry).
    Syscall,
    /// Execution moved into or out of a sandboxed region within the process.
    SandboxBoundary,
}

/// Description of one memory access presented to the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessCtx {
    /// Which core is performing the access.
    pub core: usize,
    /// Virtual address of the access.
    pub vaddr: VirtAddr,
    /// Program counter (as a virtual address) of the instruction.
    pub pc: VirtAddr,
    /// Cycle at which the access is issued.
    pub when: Cycle,
    /// Whether the instruction performing the access is still speculative
    /// (not yet guaranteed to commit). The core treats every instruction as
    /// speculative until it reaches in-order commit, matching MuonTrap's
    /// definition (§6.2).
    pub speculative: bool,
    /// Whether the access wants write (exclusive) permission.
    pub is_store: bool,
    /// Whether there is at least one older, still-unresolved conditional
    /// branch in the pipeline. This is the "Spectre-variant" visibility
    /// condition used by InvisiSpec-Spectre and STT-Spectre.
    pub under_unresolved_branch: bool,
    /// Whether the address of this access depends (through the in-flight
    /// dataflow) on the result of a speculative load that still has an older
    /// unresolved branch. This is the condition STT-Spectre uses to block
    /// transmitting instructions.
    pub addr_tainted_spectre: bool,
    /// Whether the address depends on the result of a speculative load that
    /// could still be squashed for any reason (the stricter STT-Future /
    /// "futuristic" attack model).
    pub addr_tainted_future: bool,
}

impl MemAccessCtx {
    /// Creates a context with the conservative defaults used in unit tests:
    /// speculative, not under an unresolved branch, untainted.
    pub fn simple(core: usize, vaddr: VirtAddr, pc: VirtAddr, when: Cycle, is_store: bool) -> Self {
        MemAccessCtx {
            core,
            vaddr,
            pc,
            when,
            speculative: true,
            is_store,
            under_unresolved_branch: false,
            addr_tainted_spectre: false,
            addr_tainted_future: false,
        }
    }
}

/// The memory model's answer to a speculative access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOutcome {
    /// The access completes after `latency` cycles.
    Done {
        /// Cycles until the data is available.
        latency: u64,
    },
    /// The access may not be performed while speculative (for example it
    /// would downgrade another core's private cache line under MuonTrap's
    /// reduced coherence speculation, or the defense blocks speculative
    /// execution of this load entirely). The core must retry once the
    /// instruction is no longer speculative (oldest in the ROB).
    RetryWhenNonSpeculative,
}

impl MemOutcome {
    /// Convenience accessor: the latency of a completed access.
    pub fn latency(&self) -> Option<u64> {
        match self {
            MemOutcome::Done { latency } => Some(*latency),
            MemOutcome::RetryWhenNonSpeculative => None,
        }
    }
}

/// The memory system as seen by a core.
///
/// Implementations hold the shared [`memsys::MemoryHierarchy`] plus whatever
/// per-core protection structures they need (filter caches, speculative
/// buffers, taint state). All methods take `&mut self` — the simulation is
/// single-threaded and cores are ticked round-robin within a cycle.
pub trait MemoryModel {
    /// A short human-readable name ("unprotected", "muontrap", ...).
    fn name(&self) -> &str;

    /// Whether the core should compute the dataflow-taint flags
    /// (`addr_tainted_spectre` / `addr_tainted_future`) for memory accesses.
    /// Only taint-tracking defenses (STT) need them; computing them costs a
    /// dependence-chain walk per load, so it is opt-in.
    fn needs_taint_tracking(&self) -> bool {
        false
    }

    /// Timing for fetching the instruction at `pc`.
    fn fetch_instruction(&mut self, ctx: &MemAccessCtx) -> MemOutcome;

    /// A data load issued (speculatively) by the core.
    fn load(&mut self, ctx: &MemAccessCtx) -> MemOutcome;

    /// A data store's address and data are known; the store itself will only
    /// be performed at commit. Defenses may use this to prefetch the line in
    /// shared state (MuonTrap allows this, §4.5).
    fn store_address_ready(&mut self, ctx: &MemAccessCtx);

    /// The load or store at `ctx` reached in-order commit. For MuonTrap this
    /// is where the filter-cache line is written through to the L1 and any
    /// exclusive upgrade is launched; for InvisiSpec it is where the access is
    /// validated/replayed. Returns any extra latency commit must wait for
    /// (zero for most defenses; InvisiSpec-style replay may charge cycles).
    fn commit_access(&mut self, ctx: &MemAccessCtx) -> u64;

    /// All speculative instructions younger than a mispredicted branch were
    /// squashed on `core` at `when`.
    fn on_squash(&mut self, core: usize, when: Cycle);

    /// An instruction at `ctx.pc` reached in-order commit. MuonTrap's
    /// instruction filter cache uses this to set the committed bit on the
    /// corresponding line and write it through to the L1I (§4.7). The default
    /// implementation does nothing.
    fn commit_fetch(&mut self, _ctx: &MemAccessCtx) {}

    /// Installs the page table the memory model must use to translate `core`'s
    /// virtual addresses from now on (the OS model calls this when scheduling
    /// a thread). The default implementation ignores translation entirely.
    fn set_page_table(&mut self, _core: usize, _table: memsys::PageTable) {}

    /// The protection domain changed on `core` (context switch, syscall or
    /// sandbox boundary) at `when`.
    fn on_domain_switch(&mut self, core: usize, kind: DomainSwitch, when: Cycle);

    /// Advances any background work the model does (draining queues,
    /// asynchronous upgrades). Called once per core per cycle.
    fn tick(&mut self, _core: usize, _now: Cycle) {}

    /// Whether [`tick`](Self::tick) would be a no-op for `core` right now —
    /// no queued background work (pending filter-cache invalidations,
    /// draining buffers) that per-cycle ticking would advance. The system
    /// loop only fast-forwards over idle cycles when every running core's
    /// model is idle, so a model doing genuine per-cycle work must return
    /// `false` here to stay bit-identical under the event-skipping loop.
    /// The default (`true`) is correct for models whose state changes only
    /// in response to accesses and commit/squash/domain notifications.
    fn is_idle(&self, _core: usize) -> bool {
        true
    }

    /// The earliest cycle at or after `now` at which the model has scheduled
    /// work for `core` that per-cycle ticking would advance — queued
    /// invalidations to drain, a deferred fill to apply. `Cycle::NEVER` when
    /// nothing is pending. The event-driven system loop keeps a core awake
    /// through the returned cycle (a sleeping core is woken for it), so a
    /// model with timed background state must not report a later cycle than
    /// its work really lands on. The default derives the answer from
    /// [`is_idle`](Self::is_idle): pending work is serviced on the very next
    /// tick, which matches every model whose `tick` drains its queues
    /// immediately.
    fn next_event(&self, core: usize, now: Cycle) -> Cycle {
        if self.is_idle(core) {
            Cycle::NEVER
        } else {
            now
        }
    }

    /// Statistics accumulated by the model.
    fn stats(&self) -> StatSet;
}

/// A trivially permissive memory model in which every access takes a fixed
/// latency and nothing is ever delayed. Used by core unit tests so they do not
/// depend on the `defenses` crate, and useful as a "perfect memory" idealised
/// baseline.
#[derive(Debug, Clone)]
pub struct FixedLatencyMemory {
    /// Latency charged to every data access.
    pub data_latency: u64,
    /// Latency charged to every instruction fetch.
    pub fetch_latency: u64,
    loads: u64,
    stores: u64,
    commits: u64,
    squashes: u64,
    domain_switches: u64,
}

impl FixedLatencyMemory {
    /// Creates a fixed-latency memory model.
    pub fn new(data_latency: u64, fetch_latency: u64) -> Self {
        FixedLatencyMemory {
            data_latency,
            fetch_latency,
            loads: 0,
            stores: 0,
            commits: 0,
            squashes: 0,
            domain_switches: 0,
        }
    }

    /// Number of loads observed.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Number of squash notifications observed.
    pub fn squashes(&self) -> u64 {
        self.squashes
    }
}

impl Default for FixedLatencyMemory {
    fn default() -> Self {
        FixedLatencyMemory::new(2, 1)
    }
}

impl MemoryModel for FixedLatencyMemory {
    fn name(&self) -> &str {
        "fixed-latency"
    }

    fn fetch_instruction(&mut self, _ctx: &MemAccessCtx) -> MemOutcome {
        MemOutcome::Done {
            latency: self.fetch_latency,
        }
    }

    fn load(&mut self, _ctx: &MemAccessCtx) -> MemOutcome {
        self.loads += 1;
        MemOutcome::Done {
            latency: self.data_latency,
        }
    }

    fn store_address_ready(&mut self, _ctx: &MemAccessCtx) {
        self.stores += 1;
    }

    fn commit_access(&mut self, _ctx: &MemAccessCtx) -> u64 {
        self.commits += 1;
        0
    }

    fn on_squash(&mut self, _core: usize, _when: Cycle) {
        self.squashes += 1;
    }

    fn on_domain_switch(&mut self, _core: usize, _kind: DomainSwitch, _when: Cycle) {
        self.domain_switches += 1;
    }

    fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.add("fixed.loads", self.loads);
        s.add("fixed.stores", self.stores);
        s.add("fixed.commits", self.commits);
        s.add("fixed.squashes", self.squashes);
        s.add("fixed.domain_switches", self.domain_switches);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> MemAccessCtx {
        MemAccessCtx::simple(
            0,
            VirtAddr::new(0x1000),
            VirtAddr::new(0x400),
            Cycle::ZERO,
            false,
        )
    }

    #[test]
    fn fixed_latency_model_counts_events() {
        let mut m = FixedLatencyMemory::new(5, 2);
        assert_eq!(m.load(&ctx()), MemOutcome::Done { latency: 5 });
        assert_eq!(m.fetch_instruction(&ctx()), MemOutcome::Done { latency: 2 });
        m.store_address_ready(&ctx());
        let extra = m.commit_access(&ctx());
        assert_eq!(extra, 0);
        m.on_squash(0, Cycle::ZERO);
        m.on_domain_switch(0, DomainSwitch::Syscall, Cycle::ZERO);
        let stats = m.stats();
        assert_eq!(stats.counter("fixed.loads"), 1);
        assert_eq!(stats.counter("fixed.stores"), 1);
        assert_eq!(stats.counter("fixed.commits"), 1);
        assert_eq!(stats.counter("fixed.squashes"), 1);
        assert_eq!(stats.counter("fixed.domain_switches"), 1);
    }

    #[test]
    fn outcome_latency_accessor() {
        assert_eq!(MemOutcome::Done { latency: 7 }.latency(), Some(7));
        assert_eq!(MemOutcome::RetryWhenNonSpeculative.latency(), None);
    }
}
