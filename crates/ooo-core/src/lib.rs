//! Out-of-order superscalar core model.
//!
//! This crate implements the processor side of the MuonTrap reproduction: a
//! timing model of an aggressively speculating out-of-order core (Table 1 of
//! the paper: 8-wide, 192-entry ROB, 64-entry IQ, 32-entry load and store
//! queues, tournament branch predictor with BTB and return-address stack).
//!
//! The defining property for Spectre-style attacks is that the front end
//! follows the *predicted* path: instructions after a mispredicted branch —
//! including loads whose addresses depend on speculatively loaded secrets —
//! genuinely execute, touch the memory system, and are then squashed when the
//! branch resolves. This core models exactly that: execution is driven by the
//! µISA program itself (`uarch-isa`), values are computed at issue, stores
//! only update memory at commit, and squash removes the wrong-path
//! instructions without undoing the cache state they perturbed. Whether that
//! cache state is visible to an attacker afterwards is determined by the
//! memory model plugged into the core — the unprotected baseline, MuonTrap, or
//! one of the comparison defenses — through the [`memmodel::MemoryModel`]
//! trait.
//!
//! Crate layout:
//!
//! * [`branch`] — tournament predictor, branch target buffer, return stack,
//! * [`memmodel`] — the interface between the core and the (defended) memory
//!   hierarchy,
//! * [`context`] — an architectural thread context (program, registers,
//!   functional memory),
//! * [`core`] — the pipeline itself,
//! * [`events`] — events the core reports to the system layer (syscalls,
//!   sandbox transitions, halts).

#![forbid(unsafe_code)]

pub mod branch;
pub mod context;
#[allow(clippy::module_inception)]
pub mod core;
pub mod events;
pub mod memmodel;

pub use crate::core::{CoreStats, OooCore};
pub use branch::{BranchPredictor, BranchUpdate, Prediction};
pub use context::{SharedMemory, ThreadContext};
pub use events::CoreEvent;
pub use memmodel::{DomainSwitch, MemAccessCtx, MemOutcome, MemoryModel};
