//! The MuonTrap memory model.
//!
//! [`MuonTrap`] wires the per-core filter structures in front of the shared
//! non-speculative hierarchy and implements the [`MemoryModel`] interface the
//! out-of-order core drives. Every protection mechanism is individually
//! switchable through [`ProtectionConfig`], which is how the cost-breakdown
//! experiments (figures 8 and 9) and the "insecure L0" baseline are produced
//! from this one implementation.

use simkit::addr::{LineAddr, VirtAddr};
use simkit::config::{ProtectionConfig, SystemConfig};
use simkit::cycles::Cycle;
use simkit::stats::StatSet;
use simkit::timeq::{ServiceLaw, TimedServer};

use memsys::hierarchy::MemoryHierarchy;
use memsys::tlb::{Mmu, PageTable};
use memsys::types::{AccessKind, AccessRequest, FillLevel, ServiceLevel};

use ooo_core::memmodel::{DomainSwitch, MemAccessCtx, MemOutcome, MemoryModel};

use crate::filter_cache::FilterCache;
use crate::filter_tlb::FilterTlb;

/// Per-core protection state.
#[derive(Debug)]
struct CoreState {
    data_filter: FilterCache,
    inst_filter: FilterCache,
    filter_tlb: FilterTlb,
    mmu: Mmu,
    /// The filter-cache fill path as a timed server: each miss's fill is a
    /// request whose completion ticket becomes the line's `fill_ready_at`
    /// (later hits ride along with an in-flight fill like coalesced misses).
    /// A latency pipe with a zero-latency law — the per-fill service time is
    /// the hierarchy latency supplied at request time, and the neutral
    /// `bytes_per_cycle = 0` folds the line transfer into it.
    fill_server: TimedServer,
}

/// The MuonTrap protection scheme as a pluggable memory model.
#[derive(Debug)]
pub struct MuonTrap {
    config: SystemConfig,
    protection: ProtectionConfig,
    hierarchy: MemoryHierarchy,
    cores: Vec<CoreState>,
    stats: StatSet,
    /// Reusable buffer for draining the hierarchy's invalidation queues, so
    /// the per-access/per-tick drain never allocates.
    inval_scratch: Vec<LineAddr>,
}

impl MuonTrap {
    /// Builds MuonTrap (and all baseline variants selected through
    /// `config.protection`) over a fresh hierarchy.
    pub fn new(config: &SystemConfig) -> Self {
        let hierarchy = MemoryHierarchy::new(config);
        let cores = (0..config.cores)
            .map(|i| CoreState {
                data_filter: FilterCache::new(&config.data_filter, config.line_bytes),
                inst_filter: FilterCache::new(&config.inst_filter, config.line_bytes),
                filter_tlb: FilterTlb::new(config.filter_tlb_entries),
                mmu: Mmu::new(
                    &config.tlb,
                    PageTable::new(config.tlb.page_bytes, (i as u64 + 1) << 32),
                ),
                fill_server: TimedServer::pipe(ServiceLaw::fixed(0)),
            })
            .collect();
        MuonTrap {
            config: config.clone(),
            protection: config.protection,
            hierarchy,
            cores,
            stats: StatSet::new(),
            inval_scratch: Vec::new(),
        }
    }

    /// The protection configuration in force.
    pub fn protection(&self) -> &ProtectionConfig {
        &self.protection
    }

    /// Read-only access to the underlying non-speculative hierarchy (used by
    /// the attack harness to check what became architecturally visible).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Translates a virtual address on `core` to its physical line without any
    /// timing side effects (test and attack-harness helper).
    pub fn phys_line(&self, core: usize, vaddr: VirtAddr) -> LineAddr {
        let pa = self.cores[core].mmu.page_table().translate(vaddr);
        LineAddr::from_phys(pa, self.config.line_bytes)
    }

    /// Whether `core`'s data filter cache currently holds the line containing
    /// `vaddr`.
    pub fn data_filter_contains(&self, core: usize, vaddr: VirtAddr) -> bool {
        let line = self.phys_line(core, vaddr);
        self.cores[core].data_filter.contains(line)
    }

    /// Whether `core`'s instruction filter cache currently holds the line
    /// containing `vaddr`.
    pub fn inst_filter_contains(&self, core: usize, vaddr: VirtAddr) -> bool {
        let line = self.phys_line(core, vaddr);
        self.cores[core].inst_filter.contains(line)
    }

    /// Occupancy of the data filter cache of `core` in lines.
    pub fn data_filter_occupancy(&self, core: usize) -> usize {
        self.cores[core].data_filter.occupancy()
    }

    /// Flushes every filter structure on `core` (exposed for the dedicated
    /// flush instruction placed behind sandbox barriers, §4.9).
    pub fn flush_core_filters(&mut self, core: usize) {
        let state = &mut self.cores[core];
        state.data_filter.flush();
        state.inst_filter.flush();
        state.filter_tlb.flush();
        self.stats.bump("muontrap.filter_flushes");
    }

    /// Applies pending invalidations broadcast by other cores' exclusive
    /// upgrades to this core's filter caches (§4.5: exclusive upgrades must
    /// invalidate filter caches so their timing stays independent). Runs on
    /// every tick and before every access, so the common empty-queue case
    /// returns immediately and the drain reuses one scratch buffer.
    fn drain_invalidations(&mut self, core: usize) {
        if !self.hierarchy.has_pending_invalidations(core) {
            return;
        }
        let mut lines = std::mem::take(&mut self.inval_scratch);
        self.hierarchy.drain_invalidations_into(core, &mut lines);
        for &line in &lines {
            let state = &mut self.cores[core];
            if state.data_filter.external_invalidate(line) {
                self.stats.bump("muontrap.filter_invalidations_received");
            }
            state.inst_filter.external_invalidate(line);
        }
        lines.clear();
        self.inval_scratch = lines;
    }

    /// Translates a data access, routing speculative translations through the
    /// filter TLB when that protection is enabled. Returns the physical line
    /// and the translation latency.
    fn translate_data(&mut self, core: usize, ctx: &MemAccessCtx) -> (LineAddr, u64) {
        let state = &mut self.cores[core];
        let use_filter_tlb = self.protection.filter_tlb && self.protection.secure_filter;
        if use_filter_tlb && ctx.speculative {
            let vpn = ctx.vaddr.page_number(self.config.tlb.page_bytes);
            if let Some(ppn) = state.filter_tlb.lookup(vpn) {
                let pa = ppn * self.config.tlb.page_bytes
                    + ctx.vaddr.page_offset(self.config.tlb.page_bytes);
                return (
                    LineAddr::from_phys(simkit::addr::PhysAddr::new(pa), self.config.line_bytes),
                    self.config.tlb.hit_latency,
                );
            }
            // Consult the main TLB without filling it; walk if needed and put
            // the speculative translation in the filter TLB.
            let t = state.mmu.translate_data_no_fill(ctx.vaddr);
            state
                .filter_tlb
                .fill(t.vpn, t.paddr.raw() / self.config.tlb.page_bytes);
            (
                LineAddr::from_phys(t.paddr, self.config.line_bytes),
                t.latency,
            )
        } else {
            let t = state.mmu.translate_data(ctx.vaddr);
            (
                LineAddr::from_phys(t.paddr, self.config.line_bytes),
                t.latency,
            )
        }
    }

    /// Submits a filter-cache fill on `core`'s fill server and returns the
    /// completion cycle for the line's `fill_ready_at`. `latency` is the full
    /// latency of the access that fetches the data.
    fn fill_ready_at(&mut self, core: usize, when: Cycle, latency: u64) -> Cycle {
        self.cores[core]
            .fill_server
            .request_with_latency(when, latency, self.config.line_bytes)
            .expect("the fill pipe is unbounded")
            .ready_at
    }

    /// The extra lookup penalty the L0 adds in front of the L1 (§4, "Adding
    /// this small cache increases lookup time in the L1 by one cycle"), unless
    /// the parallel-lookup option is enabled.
    fn l0_miss_penalty(&self) -> u64 {
        if self.protection.parallel_l1_access {
            0
        } else {
            self.config.data_filter.hit_latency
        }
    }

    /// Handles a data access when the data filter cache is enabled.
    fn filtered_load(
        &mut self,
        ctx: &MemAccessCtx,
        line: LineAddr,
        xlat_latency: u64,
    ) -> MemOutcome {
        let core = ctx.core;
        let secure = self.protection.secure_filter;

        // A non-speculative access that needs write permission (an atomic at
        // the head of the ROB) behaves like a committed store: it may update
        // the non-speculative hierarchy and acquire exclusive ownership.
        if !ctx.speculative && ctx.is_store {
            let req =
                AccessRequest::new(core, line, AccessKind::Store, ctx.when).with_pc(ctx.pc.raw());
            let resp = self.hierarchy.access(&req);
            self.cores[core]
                .data_filter
                .insert_committed(line, ctx.vaddr, resp.served_by);
            return MemOutcome::Done {
                latency: resp.latency + self.l0_miss_penalty() + xlat_latency,
            };
        }

        // Filter-cache hit: 1-cycle access, unless the fill that brought the
        // line in is still in flight, in which case this access rides along
        // with it like an MSHR-coalesced secondary miss.
        if let Some(meta) = self.cores[core].data_filter.lookup(line) {
            self.stats.bump("muontrap.l0d_hits");
            let wait = meta.fill_ready_at.since(ctx.when);
            return MemOutcome::Done {
                latency: self.config.data_filter.hit_latency.max(wait) + xlat_latency,
            };
        }
        self.stats.bump("muontrap.l0d_misses");

        // Reduced coherence speculation: a speculative access may not force a
        // remote private line out of M/E (§4.5). It is nacked and retried once
        // non-speculative.
        if secure
            && self.protection.coherence_protection
            && ctx.speculative
            && self.hierarchy.remote_private_holds_exclusive(core, line)
        {
            self.stats.bump("muontrap.coherence_nacks");
            return MemOutcome::RetryWhenNonSpeculative;
        }

        // Fetch the data. With the secure filter, nothing is installed in the
        // non-speculative caches; the insecure L0 fills them as usual.
        let fill = if secure && ctx.speculative {
            FillLevel::None
        } else {
            FillLevel::Normal
        };
        let train = !self.protection.prefetch_at_commit;
        let mut req = AccessRequest::new(core, line, AccessKind::Load, ctx.when)
            .with_pc(ctx.pc.raw())
            .with_fill(fill);
        if !train {
            req = req.without_prefetch_training();
        }
        if secure && self.protection.coherence_protection && ctx.speculative {
            req = req.without_remote_downgrade();
        }
        let resp = self.hierarchy.access(&req);
        if resp.coherence_delayed {
            self.stats.bump("muontrap.coherence_nacks");
            return MemOutcome::RetryWhenNonSpeculative;
        }

        // Decide SE eligibility: the line is in no other private cache, so an
        // unprotected system would have taken it Exclusive.
        let exclusive_eligible = secure
            && !ctx.is_store
            && !self.hierarchy.any_other_copy(core, line)
            && !self.hierarchy.own_l1_contains(core, line);

        let latency = resp.latency + self.l0_miss_penalty() + xlat_latency;
        let fill_ready_at = self.fill_ready_at(core, ctx.when, latency);
        let evicted = self.cores[core].data_filter.insert_speculative(
            line,
            ctx.vaddr,
            resp.served_by,
            exclusive_eligible,
            fill_ready_at,
        );
        if evicted.is_some() {
            self.stats.bump("muontrap.l0d_uncommitted_evictions");
        }

        MemOutcome::Done { latency }
    }

    /// Handles a data access when no filter cache is configured at all
    /// (should not normally happen for MuonTrap, but keeps the model total).
    fn unfiltered_load(
        &mut self,
        ctx: &MemAccessCtx,
        line: LineAddr,
        xlat_latency: u64,
    ) -> MemOutcome {
        let req =
            AccessRequest::new(ctx.core, line, AccessKind::Load, ctx.when).with_pc(ctx.pc.raw());
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + xlat_latency,
        }
    }
}

impl MemoryModel for MuonTrap {
    fn name(&self) -> &str {
        if !self.protection.secure_filter && self.protection.data_filter_cache {
            "insecure-l0"
        } else {
            "muontrap"
        }
    }

    fn fetch_instruction(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        let core = ctx.core;
        let t = self.cores[core].mmu.translate_inst(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);

        if self.protection.instruction_filter_cache && self.protection.secure_filter {
            if let Some(meta) = self.cores[core].inst_filter.lookup(line) {
                self.stats.bump("muontrap.l0i_hits");
                let wait = meta.fill_ready_at.since(ctx.when);
                return MemOutcome::Done {
                    latency: self.config.inst_filter.hit_latency.max(wait) + t.latency,
                };
            }
            self.stats.bump("muontrap.l0i_misses");
            let fill = if ctx.speculative {
                FillLevel::None
            } else {
                FillLevel::Normal
            };
            let req = AccessRequest::new(core, line, AccessKind::InstFetch, ctx.when)
                .with_fill(fill)
                .without_prefetch_training();
            let resp = self.hierarchy.access(&req);
            let latency = resp.latency + self.config.inst_filter.hit_latency + t.latency;
            let fill_ready_at = self.fill_ready_at(core, ctx.when, latency);
            self.cores[core].inst_filter.insert_speculative(
                line,
                ctx.vaddr,
                resp.served_by,
                false,
                fill_ready_at,
            );
            MemOutcome::Done { latency }
        } else {
            let req = AccessRequest::new(core, line, AccessKind::InstFetch, ctx.when);
            let resp = self.hierarchy.access(&req);
            MemOutcome::Done {
                latency: resp.latency + t.latency,
            }
        }
    }

    fn load(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        self.drain_invalidations(ctx.core);
        let (line, xlat_latency) = self.translate_data(ctx.core, ctx);
        if self.protection.data_filter_cache {
            self.filtered_load(ctx, line, xlat_latency)
        } else {
            self.unfiltered_load(ctx, line, xlat_latency)
        }
    }

    fn store_address_ready(&mut self, ctx: &MemAccessCtx) {
        // A speculative store may prefetch its line into the filter cache in
        // Shared state (but never exclusively, §4.5).
        if !self.protection.data_filter_cache || !self.protection.secure_filter {
            return;
        }
        self.drain_invalidations(ctx.core);
        let (line, _) = self.translate_data(ctx.core, ctx);
        if self.cores[ctx.core].data_filter.contains(line) {
            return;
        }
        if self.protection.coherence_protection
            && self
                .hierarchy
                .remote_private_holds_exclusive(ctx.core, line)
        {
            // Cannot even fetch a shared copy without downgrading the owner;
            // the store will get its data at commit instead.
            return;
        }
        let req = AccessRequest::new(ctx.core, line, AccessKind::Load, ctx.when)
            .with_pc(ctx.pc.raw())
            .with_fill(FillLevel::None)
            .without_prefetch_training()
            .without_remote_downgrade();
        let resp = self.hierarchy.access(&req);
        if !resp.coherence_delayed {
            self.stats.bump("muontrap.store_prefetches");
            let fill_ready_at = self.fill_ready_at(ctx.core, ctx.when, resp.latency);
            self.cores[ctx.core].data_filter.insert_speculative(
                line,
                ctx.vaddr,
                resp.served_by,
                false,
                fill_ready_at,
            );
        }
    }

    fn commit_access(&mut self, ctx: &MemAccessCtx) -> u64 {
        self.drain_invalidations(ctx.core);
        let core = ctx.core;
        // Commit-time translation uses (and fills) the non-speculative TLB;
        // the speculative entry, if any, is promoted out of the filter TLB.
        let vpn = ctx.vaddr.page_number(self.config.tlb.page_bytes);
        if self.protection.filter_tlb
            && self.protection.secure_filter
            && self.cores[core].filter_tlb.take(vpn).is_some()
        {
            self.cores[core].mmu.fill_data_tlb(vpn);
            self.stats.bump("muontrap.filter_tlb_promotions");
        }
        let t = self.cores[core].mmu.translate_data(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);

        if ctx.is_store {
            self.stats.bump("muontrap.committed_stores");
        } else {
            self.stats.bump("muontrap.committed_loads");
        }

        if !self.protection.data_filter_cache || !self.protection.secure_filter {
            // Insecure L0 / no L0: the access already updated the hierarchy at
            // execute time; a store still needs exclusive permission now.
            if ctx.is_store {
                let req = AccessRequest::new(core, line, AccessKind::Store, ctx.when)
                    .with_pc(ctx.pc.raw());
                let _ = self.hierarchy.access(&req);
                if self.protection.data_filter_cache {
                    self.cores[core].data_filter.insert_committed(
                        line,
                        ctx.vaddr,
                        ServiceLevel::L1,
                    );
                }
            }
            if self.protection.prefetch_at_commit {
                self.hierarchy.train_prefetcher(ctx.pc.raw(), line);
            }
            return 0;
        }

        // Secure filter cache: write-through at commit (§4.2).
        let meta_before = self.cores[core].data_filter.mark_committed(line);
        let was_uncommitted = meta_before.map(|m| !m.committed).unwrap_or(true);
        let filled_from = meta_before
            .map(|m| m.filled_from)
            .unwrap_or(ServiceLevel::Dram);
        let exclusive_eligible = meta_before.map(|m| m.exclusive_eligible).unwrap_or(false);
        // Whether our own L1 already held the line exclusively *before* this
        // commit: only then can a store avoid the invalidation broadcast that
        // keeps other filter caches timing-invariant (§4.5, figure 7).
        let already_exclusive = self.hierarchy.own_l1_exclusive(core, line);

        if was_uncommitted {
            // Install the line into the non-speculative L1 (re-fetching it if
            // it was evicted from the filter cache before commit, §4.2). This
            // is asynchronous and does not stall commit.
            let _ = self.hierarchy.commit_fill_l1(core, line, ctx.when);
            self.stats.bump("muontrap.commit_writethroughs");
        }

        if ctx.is_store {
            // The store needs exclusive ownership. If our own L1 already had
            // it, nothing is broadcast; otherwise the upgrade must invalidate
            // every other copy including other filter caches (fig. 7 counts
            // how often that broadcast happens).
            if !already_exclusive {
                let _ = self.hierarchy.upgrade_exclusive(core, line, ctx.when);
                self.stats.bump("muontrap.store_upgrade_broadcasts");
            }
        } else if exclusive_eligible {
            // SE pseudo-state: launch the asynchronous upgrade to Exclusive.
            let _ = self.hierarchy.upgrade_exclusive(core, line, ctx.when);
            self.stats.bump("muontrap.se_upgrades");
        }

        // Prefetcher training from the committed stream only (§4.6).
        if self.protection.prefetch_at_commit {
            let _ = filled_from; // direction of the notification; the only
                                 // prefetcher in the system sits at the L2.
            self.hierarchy.train_prefetcher(ctx.pc.raw(), line);
        }
        0
    }

    fn commit_fetch(&mut self, ctx: &MemAccessCtx) {
        if !(self.protection.instruction_filter_cache && self.protection.secure_filter) {
            return;
        }
        let core = ctx.core;
        let t = self.cores[core].mmu.translate_inst(ctx.pc);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        let meta = self.cores[core].inst_filter.mark_committed(line);
        if matches!(meta, Some(m) if !m.committed) {
            // Instruction lines are read-only: committing them just installs
            // them in the L1I; no coherence transaction is needed (§4.7).
            let req = AccessRequest::new(core, line, AccessKind::InstFetch, ctx.when)
                .without_prefetch_training();
            let _ = self.hierarchy.access(&req);
            self.stats.bump("muontrap.l0i_commit_writethroughs");
        }
    }

    fn set_page_table(&mut self, core: usize, table: PageTable) {
        self.cores[core].mmu.set_page_table(table);
    }

    fn on_squash(&mut self, core: usize, _when: Cycle) {
        if self.protection.clear_on_misspeculate && self.protection.secure_filter {
            self.flush_core_filters(core);
            self.stats.bump("muontrap.misspeculation_flushes");
        }
    }

    fn on_domain_switch(&mut self, core: usize, kind: DomainSwitch, _when: Cycle) {
        if !self.protection.data_filter_cache || !self.protection.secure_filter {
            return;
        }
        self.flush_core_filters(core);
        match kind {
            DomainSwitch::ContextSwitch => self.stats.bump("muontrap.context_switch_flushes"),
            DomainSwitch::Syscall => self.stats.bump("muontrap.syscall_flushes"),
            DomainSwitch::SandboxBoundary => self.stats.bump("muontrap.sandbox_flushes"),
        }
    }

    fn tick(&mut self, core: usize, _now: Cycle) {
        self.drain_invalidations(core);
    }

    fn is_idle(&self, core: usize) -> bool {
        // The only per-cycle background work is draining invalidation
        // broadcasts; with an empty queue, `tick` is a no-op and idle cycles
        // may be fast-forwarded.
        !self.hierarchy.has_pending_invalidations(core)
    }

    fn stats(&self) -> StatSet {
        let mut out = self.stats.clone();
        out.merge(self.hierarchy.stats());
        for (i, c) in self.cores.iter().enumerate() {
            c.data_filter
                .accumulate_stats(&mut out, &format!("muontrap.core{i}.l0d"));
            c.inst_filter
                .accumulate_stats(&mut out, &format!("muontrap.core{i}.l0i"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(core: usize, vaddr: u64, speculative: bool, is_store: bool) -> MemAccessCtx {
        MemAccessCtx {
            core,
            vaddr: VirtAddr::new(vaddr),
            pc: VirtAddr::new(0x40_0000),
            when: Cycle::ZERO,
            speculative,
            is_store,
            under_unresolved_branch: speculative,
            addr_tainted_spectre: false,
            addr_tainted_future: false,
        }
    }

    fn muontrap() -> MuonTrap {
        MuonTrap::new(&SystemConfig::paper_default())
    }

    #[test]
    fn speculative_load_fills_only_the_filter_cache() {
        let mut mt = muontrap();
        let c = ctx(0, 0x8000, true, false);
        let outcome = mt.load(&c);
        assert!(matches!(outcome, MemOutcome::Done { .. }));
        let line = mt.phys_line(0, VirtAddr::new(0x8000));
        assert!(mt.data_filter_contains(0, VirtAddr::new(0x8000)));
        assert!(
            !mt.hierarchy().own_l1_contains(0, line),
            "speculative data must not enter the L1"
        );
        assert!(
            !mt.hierarchy().l2_contains(line),
            "speculative data must not enter the L2"
        );
    }

    #[test]
    fn filter_cache_hit_is_single_cycle() {
        let mut mt = muontrap();
        let c = ctx(0, 0x8000, true, false);
        let first = mt.load(&c).latency().expect("first access completes");
        // A repeat access *after the fill has arrived* is the 1-cycle L0 hit
        // (translation is cached in the filter TLB). A repeat access while the
        // fill is still outstanding waits for it, like a coalesced miss.
        let mut early = ctx(0, 0x8000, true, false);
        early.when = Cycle::new(1);
        let while_in_flight = mt.load(&early).latency().unwrap();
        assert!(while_in_flight >= first.saturating_sub(2));
        let mut late = ctx(0, 0x8000, true, false);
        late.when = Cycle::new(first + 10);
        assert_eq!(mt.load(&late), MemOutcome::Done { latency: 1 });
    }

    #[test]
    fn commit_writes_the_line_through_to_the_l1() {
        let mut mt = muontrap();
        let spec = ctx(0, 0x8000, true, false);
        let _ = mt.load(&spec);
        let line = mt.phys_line(0, VirtAddr::new(0x8000));
        assert!(!mt.hierarchy().own_l1_contains(0, line));
        let commit = ctx(0, 0x8000, false, false);
        let extra = mt.commit_access(&commit);
        assert_eq!(
            extra, 0,
            "the write-through is asynchronous and must not stall commit"
        );
        assert!(mt.hierarchy().own_l1_contains(0, line));
        let s = mt.stats();
        assert_eq!(s.counter("muontrap.commit_writethroughs"), 1);
    }

    #[test]
    fn commit_refetches_lines_evicted_from_the_filter_cache() {
        let mut mt = muontrap();
        // Fill the 32-line filter cache far past capacity so early lines are
        // evicted before they commit.
        for i in 0..128u64 {
            let _ = mt.load(&ctx(0, 0x10_0000 + i * 64, true, false));
        }
        let target = VirtAddr::new(0x10_0000);
        assert!(
            !mt.data_filter_contains(0, target),
            "the first line must have been evicted"
        );
        let line = mt.phys_line(0, target);
        let _ = mt.commit_access(&ctx(0, 0x10_0000, false, false));
        assert!(
            mt.hierarchy().own_l1_contains(0, line),
            "commit must bring the line into the L1 anyway"
        );
    }

    #[test]
    fn domain_switch_flushes_all_filter_structures() {
        let mut mt = muontrap();
        let _ = mt.load(&ctx(0, 0x8000, true, false));
        let _ = mt.fetch_instruction(&ctx(0, 0x40_0000, true, false));
        assert!(mt.data_filter_occupancy(0) > 0);
        mt.on_domain_switch(0, DomainSwitch::ContextSwitch, Cycle::ZERO);
        assert_eq!(mt.data_filter_occupancy(0), 0);
        assert!(!mt.inst_filter_contains(0, VirtAddr::new(0x40_0000)));
        let s = mt.stats();
        assert_eq!(s.counter("muontrap.context_switch_flushes"), 1);
    }

    #[test]
    fn clear_on_misspeculate_is_opt_in() {
        let mut cfg = SystemConfig::paper_default();
        cfg.protection = ProtectionConfig::muontrap_default();
        let mut mt = MuonTrap::new(&cfg);
        let _ = mt.load(&ctx(0, 0x8000, true, false));
        mt.on_squash(0, Cycle::ZERO);
        assert!(
            mt.data_filter_contains(0, VirtAddr::new(0x8000)),
            "default keeps data on squash"
        );

        cfg.protection = ProtectionConfig::muontrap_clear_on_misspeculate();
        let mut mt = MuonTrap::new(&cfg);
        let _ = mt.load(&ctx(0, 0x8000, true, false));
        mt.on_squash(0, Cycle::ZERO);
        assert!(
            !mt.data_filter_contains(0, VirtAddr::new(0x8000)),
            "clear-on-misspeculate flushes"
        );
    }

    #[test]
    fn speculative_access_to_remote_exclusive_line_is_nacked() {
        let mut cfg = SystemConfig::paper_default();
        // Both "processes" use the same page table so the cores genuinely
        // share physical lines in this unit test.
        let mut mt = MuonTrap::new(&cfg);
        mt.set_page_table(0, PageTable::new(cfg.tlb.page_bytes, 0));
        mt.set_page_table(1, PageTable::new(cfg.tlb.page_bytes, 0));
        // Core 1 commits a store, so its L1 holds the line in Modified.
        let _ = mt.commit_access(&ctx(1, 0x9000, false, true));
        assert!(mt
            .hierarchy()
            .own_l1_exclusive(1, mt.phys_line(1, VirtAddr::new(0x9000))));
        // Core 0 now tries to load the same line speculatively: nacked.
        let outcome = mt.load(&ctx(0, 0x9000, true, false));
        assert_eq!(outcome, MemOutcome::RetryWhenNonSpeculative);
        // Once non-speculative the access succeeds.
        let outcome = mt.load(&ctx(0, 0x9000, false, false));
        assert!(matches!(outcome, MemOutcome::Done { .. }));
        cfg.protection.coherence_protection = false;
        let mut mt = MuonTrap::new(&cfg);
        mt.set_page_table(0, PageTable::new(cfg.tlb.page_bytes, 0));
        mt.set_page_table(1, PageTable::new(cfg.tlb.page_bytes, 0));
        let _ = mt.commit_access(&ctx(1, 0x9000, false, true));
        let outcome = mt.load(&ctx(0, 0x9000, true, false));
        assert!(
            matches!(outcome, MemOutcome::Done { .. }),
            "without coherence protection the speculative access downgrades the owner"
        );
    }

    #[test]
    fn store_commit_broadcast_only_when_not_already_exclusive() {
        let mut mt = muontrap();
        // First store to a private line: the L1 does not yet hold it, so the
        // upgrade broadcast happens.
        let _ = mt.commit_access(&ctx(0, 0xa000, false, true));
        let s1 = mt.stats().counter("muontrap.store_upgrade_broadcasts");
        assert_eq!(s1, 1);
        // Second store to the same line: the L1 already has it exclusively.
        let _ = mt.commit_access(&ctx(0, 0xa000, false, true));
        let s2 = mt.stats().counter("muontrap.store_upgrade_broadcasts");
        assert_eq!(s2, 1, "no new broadcast for an already-exclusive line");
        assert_eq!(mt.stats().counter("muontrap.committed_stores"), 2);
    }

    #[test]
    fn exclusive_upgrade_invalidates_other_filter_caches() {
        let cfg = SystemConfig::paper_default();
        let mut mt = MuonTrap::new(&cfg);
        mt.set_page_table(0, PageTable::new(cfg.tlb.page_bytes, 0));
        mt.set_page_table(1, PageTable::new(cfg.tlb.page_bytes, 0));
        // Core 1 speculatively loads a line into its filter cache.
        let _ = mt.load(&ctx(1, 0xb000, true, false));
        assert!(mt.data_filter_contains(1, VirtAddr::new(0xb000)));
        // Core 0 commits a store to the same line: the upgrade must reach core
        // 1's filter cache on its next activity.
        let _ = mt.commit_access(&ctx(0, 0xb000, false, true));
        mt.tick(1, Cycle::new(10));
        assert!(
            !mt.data_filter_contains(1, VirtAddr::new(0xb000)),
            "the filter-cache copy must be invalidated by the exclusive upgrade"
        );
    }

    #[test]
    fn prefetcher_only_learns_from_committed_stream() {
        let mut mt = muontrap();
        // Speculative streaming accesses: the prefetcher must stay untrained.
        for i in 0..8u64 {
            let mut c = ctx(0, 0x20_0000 + i * 64, true, false);
            c.pc = VirtAddr::new(0x40_1000);
            let _ = mt.load(&c);
        }
        assert_eq!(
            mt.hierarchy().stats().counter("hierarchy.prefetch_fills"),
            0
        );
        // The same stream committing trains it.
        for i in 0..8u64 {
            let mut c = ctx(0, 0x20_0000 + i * 64, false, false);
            c.pc = VirtAddr::new(0x40_1000);
            let _ = mt.commit_access(&c);
        }
        assert!(mt.hierarchy().stats().counter("hierarchy.prefetch_fills") > 0);
    }

    #[test]
    fn insecure_l0_fills_the_normal_hierarchy() {
        let mut cfg = SystemConfig::paper_default();
        cfg.protection = ProtectionConfig::insecure_l0();
        let mut mt = MuonTrap::new(&cfg);
        assert_eq!(mt.name(), "insecure-l0");
        let _ = mt.load(&ctx(0, 0x8000, true, false));
        let line = mt.phys_line(0, VirtAddr::new(0x8000));
        assert!(
            mt.hierarchy().own_l1_contains(0, line),
            "the insecure L0 does not isolate the L1"
        );
    }

    #[test]
    fn instruction_filter_cache_captures_speculative_fetches() {
        let mut mt = muontrap();
        let c = ctx(0, 0x40_0000, true, false);
        let first = mt.fetch_instruction(&c);
        assert!(matches!(first, MemOutcome::Done { .. }));
        assert!(mt.inst_filter_contains(0, VirtAddr::new(0x40_0000)));
        let line = mt.phys_line(0, VirtAddr::new(0x40_0000));
        assert!(
            !mt.hierarchy().l2_contains(line),
            "speculative fetch must not fill the L2"
        );
        // Committing the fetch installs the line in the non-speculative side.
        mt.commit_fetch(&c);
        assert!(mt.hierarchy().own_l1i_contains(0, line));
        assert_eq!(mt.stats().counter("muontrap.l0i_commit_writethroughs"), 1);
    }

    #[test]
    fn parallel_l1_access_reduces_miss_latency() {
        let mut serial_cfg = SystemConfig::paper_default();
        serial_cfg.protection = ProtectionConfig::muontrap_default();
        let mut parallel_cfg = SystemConfig::paper_default();
        parallel_cfg.protection = ProtectionConfig::muontrap_parallel_l1();

        let mut serial = MuonTrap::new(&serial_cfg);
        let mut parallel = MuonTrap::new(&parallel_cfg);
        // Warm both L1s non-speculatively, then measure a speculative L0 miss
        // that hits in the L1.
        let warm = ctx(0, 0xc000, false, false);
        let _ = serial.commit_access(&warm);
        let _ = parallel.commit_access(&warm);
        serial.flush_core_filters(0);
        parallel.flush_core_filters(0);
        let probe = ctx(0, 0xc000, true, false);
        let s = serial.load(&probe).latency().unwrap();
        let p = parallel.load(&probe).latency().unwrap();
        assert!(
            p < s,
            "parallel L0/L1 lookup must be faster on an L0 miss ({p} vs {s})"
        );
    }

    #[test]
    fn store_address_prefetch_brings_line_in_shared_state_only() {
        let mut mt = muontrap();
        let c = ctx(0, 0xd000, true, true);
        mt.store_address_ready(&c);
        assert!(mt.data_filter_contains(0, VirtAddr::new(0xd000)));
        let line = mt.phys_line(0, VirtAddr::new(0xd000));
        assert!(!mt.hierarchy().own_l1_exclusive(0, line));
        assert!(!mt.hierarchy().own_l1_contains(0, line));
        assert_eq!(mt.stats().counter("muontrap.store_prefetches"), 1);
    }

    #[test]
    fn stats_include_hierarchy_and_filter_counters() {
        let mut mt = muontrap();
        let _ = mt.load(&ctx(0, 0x8000, true, false));
        let s = mt.stats();
        assert!(s.counter("hierarchy.data_accesses") > 0);
        assert!(s.counter("muontrap.core0.l0d.misses") > 0);
    }
}
