//! The speculative filter cache (L0).
//!
//! A filter cache is a small, fast cache placed between the core and the L1
//! that captures all cache state produced by speculative execution. Lines
//! carry a *committed* bit: they are written through to the non-speculative L1
//! only when an instruction using them reaches in-order commit. Because the
//! cache is write-through, every valid bit can be cleared in a single cycle,
//! which is how MuonTrap makes protection-domain switches cheap.
//!
//! The filter cache is non-inclusive non-exclusive with respect to the rest of
//! the hierarchy and participates in coherence only in the Shared state, plus
//! the `SE` bookkeeping bit that requests an asynchronous upgrade to Exclusive
//! at commit.

use simkit::addr::{LineAddr, VirtAddr};
use simkit::config::CacheConfig;
use simkit::cycles::Cycle;
use simkit::stats::StatSet;

use memsys::cache::CacheArray;
use memsys::mesi::MesiState;
use memsys::types::ServiceLevel;

/// Per-line metadata carried by a filter cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterLineMeta {
    /// Whether an instruction using this line has committed (and the line has
    /// therefore been written through to the L1).
    pub committed: bool,
    /// Which level of the non-speculative hierarchy the line was filled from;
    /// used to direct the commit-time prefetch notification (§4.6).
    pub filled_from: ServiceLevel,
    /// The `SE` pseudo-state: the line would have been Exclusive in an
    /// unprotected system, so an asynchronous exclusive upgrade should be
    /// launched when it commits (§4.5).
    pub exclusive_eligible: bool,
    /// Virtual tag of the line (the filter cache is virtually indexed from the
    /// CPU side, §4.4). Stored for completeness and aliasing checks.
    pub virtual_tag: u64,
    /// The cycle at which the fill that brought this line in completes.
    /// Accesses before this behave like MSHR-coalesced secondary misses and
    /// must wait for the data to actually arrive.
    pub fill_ready_at: Cycle,
}

impl Default for FilterLineMeta {
    fn default() -> Self {
        FilterLineMeta {
            committed: false,
            filled_from: ServiceLevel::Dram,
            exclusive_eligible: false,
            virtual_tag: 0,
            fill_ready_at: Cycle::ZERO,
        }
    }
}

/// A speculative filter cache: a physically-tagged, virtually-indexable
/// set-associative cache whose lines are all held in Shared state and carry
/// committed bits.
#[derive(Debug, Clone)]
pub struct FilterCache {
    array: CacheArray<FilterLineMeta>,
    line_bytes: u64,
    flushes: u64,
    lines_flushed: u64,
    uncommitted_evictions: u64,
    external_invalidations: u64,
    hits: u64,
    misses: u64,
}

impl FilterCache {
    /// Creates a filter cache with the geometry in `config`.
    pub fn new(config: &CacheConfig, line_bytes: u64) -> Self {
        FilterCache {
            array: CacheArray::new(config, line_bytes),
            line_bytes,
            flushes: 0,
            lines_flushed: 0,
            uncommitted_evictions: 0,
            external_invalidations: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in cache lines.
    pub fn capacity_lines(&self) -> usize {
        self.array.capacity_lines()
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.array.occupancy()
    }

    /// Whether `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.array.contains(line)
    }

    /// Whether `line` is present and already committed.
    pub fn is_committed(&self, line: LineAddr) -> bool {
        self.array
            .peek(line)
            .map(|l| l.meta.committed)
            .unwrap_or(false)
    }

    /// Looks up `line`, updating replacement state. Returns the metadata if hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<FilterLineMeta> {
        match self.array.lookup(line) {
            Some(entry) => {
                self.hits += 1;
                Some(entry.meta)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a line brought in by a speculative access whose fill completes
    /// at `fill_ready_at`. The line enters in Shared state with its committed
    /// bit clear. Returns the physical line address of an evicted
    /// *uncommitted* victim, if any (committed victims need no action because
    /// they were already written through).
    pub fn insert_speculative(
        &mut self,
        line: LineAddr,
        vaddr: VirtAddr,
        filled_from: ServiceLevel,
        exclusive_eligible: bool,
        fill_ready_at: Cycle,
    ) -> Option<LineAddr> {
        let meta = FilterLineMeta {
            committed: false,
            filled_from,
            exclusive_eligible,
            virtual_tag: vaddr.raw() / self.line_bytes,
            fill_ready_at,
        };
        let eviction = self.array.insert(line, MesiState::Shared, meta);
        match eviction.victim {
            Some(victim) if !victim.meta.committed => {
                self.uncommitted_evictions += 1;
                Some(victim.addr)
            }
            _ => None,
        }
    }

    /// Inserts a line brought in by a non-speculative access (already visible
    /// to the rest of the system): its committed bit starts set.
    pub fn insert_committed(&mut self, line: LineAddr, vaddr: VirtAddr, filled_from: ServiceLevel) {
        let meta = FilterLineMeta {
            committed: true,
            filled_from,
            exclusive_eligible: false,
            virtual_tag: vaddr.raw() / self.line_bytes,
            fill_ready_at: Cycle::ZERO,
        };
        let _ = self.array.insert(line, MesiState::Shared, meta);
    }

    /// Marks `line` committed (write-through happened). Returns the metadata
    /// the line had before being marked, or `None` if the line is no longer
    /// present (it may have been evicted before commit, §4.2).
    pub fn mark_committed(&mut self, line: LineAddr) -> Option<FilterLineMeta> {
        let entry = self.array.peek_mut(line)?;
        let before = entry.meta;
        entry.meta.committed = true;
        entry.meta.exclusive_eligible = false;
        Some(before)
    }

    /// Invalidates `line` because another core gained exclusive ownership.
    pub fn external_invalidate(&mut self, line: LineAddr) -> bool {
        let removed = self.array.invalidate(line).is_some();
        if removed {
            self.external_invalidations += 1;
        }
        removed
    }

    /// Clears every valid bit. This is the constant-time flush used on
    /// protection-domain switches (§4.3). Returns the number of lines dropped.
    pub fn flush(&mut self) -> usize {
        let dropped = self.array.invalidate_all();
        self.flushes += 1;
        self.lines_flushed += dropped as u64;
        dropped
    }

    /// Number of flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Number of uncommitted lines evicted by capacity/conflict pressure.
    pub fn uncommitted_evictions(&self) -> u64 {
        self.uncommitted_evictions
    }

    /// Accumulates this cache's counters into `stats` under `prefix`.
    pub fn accumulate_stats(&self, stats: &mut StatSet, prefix: &str) {
        stats.add(&format!("{prefix}.hits"), self.hits);
        stats.add(&format!("{prefix}.misses"), self.misses);
        stats.add(&format!("{prefix}.flushes"), self.flushes);
        stats.add(&format!("{prefix}.lines_flushed"), self.lines_flushed);
        stats.add(
            &format!("{prefix}.uncommitted_evictions"),
            self.uncommitted_evictions,
        );
        stats.add(
            &format!("{prefix}.external_invalidations"),
            self.external_invalidations,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> FilterCache {
        // The paper's 2 KiB, 4-way filter cache with 64-byte lines.
        FilterCache::new(&CacheConfig::new(2048, 4, 1, 4), 64)
    }

    #[test]
    fn geometry_matches_paper_filter_cache() {
        let c = cache();
        assert_eq!(c.capacity_lines(), 32);
    }

    #[test]
    fn speculative_lines_start_uncommitted() {
        let mut c = cache();
        c.insert_speculative(
            LineAddr::new(5),
            VirtAddr::new(5 * 64),
            ServiceLevel::Dram,
            false,
            Cycle::ZERO,
        );
        assert!(c.contains(LineAddr::new(5)));
        assert!(!c.is_committed(LineAddr::new(5)));
        let meta = c.lookup(LineAddr::new(5)).unwrap();
        assert!(!meta.committed);
    }

    #[test]
    fn committing_a_line_sets_the_bit_and_clears_se() {
        let mut c = cache();
        c.insert_speculative(
            LineAddr::new(9),
            VirtAddr::new(9 * 64),
            ServiceLevel::L2,
            true,
            Cycle::ZERO,
        );
        let before = c.mark_committed(LineAddr::new(9)).expect("line present");
        assert!(!before.committed);
        assert!(before.exclusive_eligible);
        assert!(c.is_committed(LineAddr::new(9)));
        let after = c.lookup(LineAddr::new(9)).unwrap();
        assert!(
            !after.exclusive_eligible,
            "SE is consumed by the commit-time upgrade"
        );
    }

    #[test]
    fn committing_an_absent_line_reports_none() {
        let mut c = cache();
        assert!(c.mark_committed(LineAddr::new(1)).is_none());
    }

    #[test]
    fn flush_is_complete_and_counted() {
        let mut c = cache();
        for i in 0..10 {
            c.insert_speculative(
                LineAddr::new(i),
                VirtAddr::new(i * 64),
                ServiceLevel::Dram,
                false,
                Cycle::ZERO,
            );
        }
        assert_eq!(c.occupancy(), 10);
        assert_eq!(c.flush(), 10);
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.flushes(), 1);
        for i in 0..10 {
            assert!(!c.contains(LineAddr::new(i)));
        }
    }

    #[test]
    fn uncommitted_evictions_are_reported() {
        // A tiny, direct-mapped filter cache: conflicting lines evict each other.
        let mut c = FilterCache::new(&CacheConfig::new(128, 1, 1, 1), 64);
        assert_eq!(c.capacity_lines(), 2);
        c.insert_speculative(
            LineAddr::new(0),
            VirtAddr::new(0),
            ServiceLevel::Dram,
            false,
            Cycle::ZERO,
        );
        // Line 2 maps to the same set as line 0 in a 2-set direct-mapped cache.
        let victim = c.insert_speculative(
            LineAddr::new(2),
            VirtAddr::new(2 * 64),
            ServiceLevel::Dram,
            false,
            Cycle::ZERO,
        );
        assert_eq!(victim, Some(LineAddr::new(0)));
        assert_eq!(c.uncommitted_evictions(), 1);
    }

    #[test]
    fn committed_victims_are_not_reported() {
        let mut c = FilterCache::new(&CacheConfig::new(128, 1, 1, 1), 64);
        c.insert_speculative(
            LineAddr::new(0),
            VirtAddr::new(0),
            ServiceLevel::Dram,
            false,
            Cycle::ZERO,
        );
        c.mark_committed(LineAddr::new(0));
        let victim = c.insert_speculative(
            LineAddr::new(2),
            VirtAddr::new(128),
            ServiceLevel::Dram,
            false,
            Cycle::ZERO,
        );
        assert_eq!(
            victim, None,
            "already-written-through victims need no action"
        );
    }

    #[test]
    fn external_invalidation_removes_the_line() {
        let mut c = cache();
        c.insert_speculative(
            LineAddr::new(3),
            VirtAddr::new(192),
            ServiceLevel::L2,
            false,
            Cycle::ZERO,
        );
        assert!(c.external_invalidate(LineAddr::new(3)));
        assert!(!c.contains(LineAddr::new(3)));
        assert!(!c.external_invalidate(LineAddr::new(3)));
    }

    #[test]
    fn non_speculative_inserts_start_committed() {
        let mut c = cache();
        c.insert_committed(LineAddr::new(7), VirtAddr::new(448), ServiceLevel::L1);
        assert!(c.is_committed(LineAddr::new(7)));
    }

    #[test]
    fn stats_accumulate_under_prefix() {
        let mut c = cache();
        c.insert_speculative(
            LineAddr::new(1),
            VirtAddr::new(64),
            ServiceLevel::Dram,
            false,
            Cycle::ZERO,
        );
        let _ = c.lookup(LineAddr::new(1));
        let _ = c.lookup(LineAddr::new(2));
        c.flush();
        let mut stats = StatSet::new();
        c.accumulate_stats(&mut stats, "l0d");
        assert_eq!(stats.counter("l0d.hits"), 1);
        assert_eq!(stats.counter("l0d.misses"), 1);
        assert_eq!(stats.counter("l0d.flushes"), 1);
        assert_eq!(stats.counter("l0d.lines_flushed"), 1);
    }
}
