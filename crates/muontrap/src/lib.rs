//! MuonTrap: capturing speculative state in filter caches.
//!
//! This crate is the paper's contribution. It implements the
//! [`ooo_core::MemoryModel`] interface on top of the non-speculative hierarchy
//! in `memsys`, adding per-core:
//!
//! * a **data filter cache** (L0D) that captures every cache line touched by a
//!   speculative load or store prefetch, with a *committed* bit per line and a
//!   write-through-at-commit policy (§4.1–§4.2),
//! * an **instruction filter cache** (L0I) for speculative instruction fetch
//!   (§4.7),
//! * a **filter TLB** holding speculative translations (§4.7),
//! * **constant-time flushes** of all three on context switches, syscalls and
//!   sandbox boundaries — and optionally on every misspeculation (§4.3, §4.9),
//! * **reduced coherence speculation**: speculative accesses never downgrade a
//!   remote private (M/E) line; they are negatively acknowledged and retried
//!   once non-speculative (§4.5),
//! * the **SE pseudo-state**: lines that an unprotected system would have held
//!   exclusively are marked so an asynchronous exclusive upgrade is launched
//!   at commit (§4.5),
//! * **commit-time prefetcher training**, so the prefetcher only ever learns
//!   from the committed instruction stream (§4.6),
//! * optional **parallel L0/L1 lookup** trading complexity for latency (§6.5).
//!
//! Every mechanism can be toggled through
//! [`simkit::config::ProtectionConfig`], which is how the cost-breakdown
//! experiments (figures 8 and 9 of the paper) are produced.
//!
//! # Example
//!
//! ```
//! use simkit::config::SystemConfig;
//! use muontrap::MuonTrap;
//! use ooo_core::{MemoryModel, MemAccessCtx};
//! use simkit::addr::VirtAddr;
//! use simkit::cycles::Cycle;
//!
//! let cfg = SystemConfig::paper_default();
//! let mut mt = MuonTrap::new(&cfg);
//! // A speculative load is captured by the filter cache, not the L1.
//! let ctx = MemAccessCtx::simple(0, VirtAddr::new(0x8000), VirtAddr::new(0x400_000), Cycle::ZERO, false);
//! let _ = mt.load(&ctx);
//! assert!(mt.data_filter_contains(0, VirtAddr::new(0x8000)));
//! assert!(!mt.hierarchy().own_l1_contains(0, mt.phys_line(0, VirtAddr::new(0x8000))));
//! ```

#![forbid(unsafe_code)]

pub mod filter_cache;
pub mod filter_tlb;
pub mod model;

pub use filter_cache::{FilterCache, FilterLineMeta};
pub use filter_tlb::FilterTlb;
pub use model::MuonTrap;
