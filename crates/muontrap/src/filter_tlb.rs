//! The filter TLB (§4.7).
//!
//! Speculative address translations must not evict entries from the
//! non-speculative TLB, otherwise a prime-and-probe attack on TLB entries
//! leaks which pages a victim touched speculatively. MuonTrap therefore holds
//! speculative translations in a small filter TLB: on instruction commit the
//! relevant translation is moved to the non-speculative TLB, and the filter
//! TLB is flushed on protection-domain switches like the filter caches.

/// A small, fully-associative buffer of speculative translations.
#[derive(Debug, Clone)]
pub struct FilterTlb {
    entries: Vec<(u64, u64, u64)>, // (vpn, ppn, lru)
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    flushes: u64,
}

impl FilterTlb {
    /// Creates a filter TLB with `capacity` entries (at least one).
    pub fn new(capacity: usize) -> Self {
        FilterTlb {
            entries: Vec::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Number of cached speculative translations.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Looks up a speculative translation for `vpn`.
    pub fn lookup(&mut self, vpn: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|(v, _, _)| *v == vpn) {
            e.2 = tick;
            self.hits += 1;
            Some(e.1)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Records a speculative translation.
    pub fn fill(&mut self, vpn: u64, ppn: u64) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|(v, _, _)| *v == vpn) {
            e.1 = ppn;
            e.2 = self.tick;
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(pos) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, lru))| *lru)
                .map(|(i, _)| i)
            {
                self.entries.remove(pos);
            }
        }
        self.entries.push((vpn, ppn, self.tick));
    }

    /// Removes and returns the translation for `vpn`, if present (used when a
    /// committing instruction promotes its translation to the main TLB).
    pub fn take(&mut self, vpn: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|(v, _, _)| *v == vpn)?;
        Some(self.entries.remove(pos).1)
    }

    /// Drops every speculative translation (protection-domain switch).
    pub fn flush(&mut self) -> usize {
        let dropped = self.entries.len();
        self.entries.clear();
        self.flushes += 1;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_lookup_hits() {
        let mut t = FilterTlb::new(4);
        assert_eq!(t.lookup(7), None);
        t.fill(7, 1007);
        assert_eq!(t.lookup(7), Some(1007));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut t = FilterTlb::new(2);
        t.fill(1, 101);
        t.fill(2, 102);
        let _ = t.lookup(1); // refresh 1
        t.fill(3, 103); // evicts 2
        assert_eq!(t.lookup(2), None);
        assert_eq!(t.lookup(1), Some(101));
        assert_eq!(t.lookup(3), Some(103));
    }

    #[test]
    fn take_removes_the_entry() {
        let mut t = FilterTlb::new(4);
        t.fill(5, 505);
        assert_eq!(t.take(5), Some(505));
        assert_eq!(t.take(5), None);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn flush_drops_everything_and_counts() {
        let mut t = FilterTlb::new(8);
        for i in 0..5 {
            t.fill(i, i + 100);
        }
        assert_eq!(t.flush(), 5);
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.flushes(), 1);
    }

    #[test]
    fn refilling_same_vpn_updates_in_place() {
        let mut t = FilterTlb::new(2);
        t.fill(9, 1);
        t.fill(9, 2);
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.lookup(9), Some(2));
    }
}
