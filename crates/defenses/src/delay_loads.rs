//! DelayLoads: no speculative cache fills, period.
//!
//! A deliberately naive InvisiSpec-style defense, kept distinct from the
//! modelled [`InvisiSpec`](crate::InvisiSpec) variants in two ways:
//!
//! * **no speculative buffer** — a repeat speculative access to the same line
//!   pays the full miss latency again instead of hitting a per-core buffer;
//! * **no speculative prefetcher training** — the prefetcher only learns from
//!   the committed access stream (InvisiSpec leaves the prefetcher exposed,
//!   which is exactly what attack 5 exploits against it).
//!
//! Speculative loads are serviced without filling any cache level and without
//! downgrading remote owners; the line is installed (and the prefetcher
//! trained) by an ordinary access when the load commits. Instruction fetches
//! under an unresolved branch are handled the same way: invisible now,
//! installed at commit.

use std::collections::HashSet;

use simkit::addr::LineAddr;
use simkit::config::SystemConfig;
use simkit::cycles::Cycle;
use simkit::stats::StatSet;

use memsys::hierarchy::MemoryHierarchy;
use memsys::tlb::{Mmu, PageTable};
use memsys::types::{AccessKind, AccessRequest, FillLevel};

use ooo_core::memmodel::{DomainSwitch, MemAccessCtx, MemOutcome, MemoryModel};

/// The no-speculative-fills memory model.
///
/// # Examples
///
/// ```
/// use defenses::DelayLoads;
/// use ooo_core::memmodel::{MemAccessCtx, MemoryModel};
/// use simkit::addr::VirtAddr;
/// use simkit::config::SystemConfig;
/// use simkit::cycles::Cycle;
///
/// let mut model = DelayLoads::new(&SystemConfig::paper_default());
/// let ctx = MemAccessCtx::simple(
///     0,
///     VirtAddr::new(0x8000),
///     VirtAddr::new(0x40_0000),
///     Cycle::ZERO,
///     false,
/// );
/// // A speculative load completes, but leaves nothing in any cache.
/// assert!(model.load(&ctx).latency().is_some());
/// let line = model.phys_line(0, VirtAddr::new(0x8000));
/// assert!(!model.hierarchy().own_l1_contains(0, line));
/// ```
#[derive(Debug)]
pub struct DelayLoads {
    config: SystemConfig,
    hierarchy: MemoryHierarchy,
    mmus: Vec<Mmu>,
    /// Per-core instruction lines fetched under an unresolved branch and not
    /// yet committed: invisible for now, installed if and when they commit.
    pending_ifetch: Vec<HashSet<LineAddr>>,
    stats: StatSet,
}

impl DelayLoads {
    /// Builds the model over a fresh hierarchy.
    pub fn new(config: &SystemConfig) -> Self {
        let mmus = (0..config.cores)
            .map(|i| {
                Mmu::new(
                    &config.tlb,
                    PageTable::new(config.tlb.page_bytes, (i as u64 + 1) << 32),
                )
            })
            .collect();
        DelayLoads {
            config: config.clone(),
            hierarchy: MemoryHierarchy::new(config),
            mmus,
            pending_ifetch: (0..config.cores).map(|_| HashSet::new()).collect(),
            stats: StatSet::new(),
        }
    }

    /// Read-only access to the hierarchy (for the attack harness).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Translates a virtual address on `core` to its physical line without
    /// timing side effects.
    pub fn phys_line(&self, core: usize, vaddr: simkit::addr::VirtAddr) -> LineAddr {
        let pa = self.mmus[core].page_table().translate(vaddr);
        LineAddr::from_phys(pa, self.config.line_bytes)
    }

    fn data_line(&mut self, core: usize, ctx: &MemAccessCtx) -> (LineAddr, u64) {
        let t = self.mmus[core].translate_data(ctx.vaddr);
        (
            LineAddr::from_phys(t.paddr, self.config.line_bytes),
            t.latency,
        )
    }
}

impl MemoryModel for DelayLoads {
    fn name(&self) -> &str {
        "delay-loads"
    }

    fn fetch_instruction(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        let t = self.mmus[ctx.core].translate_inst(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        if ctx.under_unresolved_branch {
            self.stats.bump("delay_loads.invisible_ifetches");
            let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when)
                .with_fill(FillLevel::None)
                .without_prefetch_training();
            let resp = self.hierarchy.access(&req);
            self.pending_ifetch[ctx.core].insert(line);
            return MemOutcome::Done {
                latency: resp.latency + t.latency,
            };
        }
        let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when);
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + t.latency,
        }
    }

    fn load(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        let (line, xlat) = self.data_line(ctx.core, ctx);

        // Non-speculative accesses (atomics at the head of the ROB, retried
        // loads) behave exactly as on the unprotected hierarchy.
        if !ctx.speculative {
            self.stats.bump("delay_loads.nonspec_loads");
            let kind = if ctx.is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let req = AccessRequest::new(ctx.core, line, kind, ctx.when).with_pc(ctx.pc.raw());
            let resp = self.hierarchy.access(&req);
            return MemOutcome::Done {
                latency: resp.latency + xlat,
            };
        }

        // The defining restriction: a speculative load may read the data but
        // fills nothing, trains nothing and downgrades no remote owner. There
        // is no speculative buffer, so a repeat access starts from scratch.
        self.stats.bump("delay_loads.spec_loads");
        let req = AccessRequest::new(ctx.core, line, AccessKind::Load, ctx.when)
            .with_pc(ctx.pc.raw())
            .with_fill(FillLevel::None)
            .without_prefetch_training()
            .without_remote_downgrade();
        let resp = self.hierarchy.access(&req);
        if resp.coherence_delayed {
            // Exclusively owned elsewhere: even an invisible read would be
            // observable through the owner's timing, so wait until safe.
            self.stats.bump("delay_loads.delayed_remote_owned");
            return MemOutcome::RetryWhenNonSpeculative;
        }
        MemOutcome::Done {
            latency: resp.latency + xlat,
        }
    }

    fn store_address_ready(&mut self, _ctx: &MemAccessCtx) {
        // No speculative store prefetch: stores touch memory only at commit.
    }

    fn commit_access(&mut self, ctx: &MemAccessCtx) -> u64 {
        let (line, _) = self.data_line(ctx.core, ctx);
        if ctx.is_store {
            self.stats.bump("delay_loads.committed_stores");
            let req = AccessRequest::new(ctx.core, line, AccessKind::Store, ctx.when)
                .with_pc(ctx.pc.raw());
            let _ = self.hierarchy.access(&req);
            return 0;
        }
        // The deferred fill: an ordinary access at commit installs the line
        // and gives the prefetcher its only (committed-stream) training. The
        // fill is asynchronous — the data itself was already delivered at
        // execute — so commit is not stalled.
        self.stats.bump("delay_loads.committed_loads");
        let req =
            AccessRequest::new(ctx.core, line, AccessKind::Load, ctx.when).with_pc(ctx.pc.raw());
        let _ = self.hierarchy.access(&req);
        0
    }

    fn commit_fetch(&mut self, ctx: &MemAccessCtx) {
        let t = self.mmus[ctx.core].translate_inst(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        if self.pending_ifetch[ctx.core].remove(&line) {
            self.stats.bump("delay_loads.committed_ifetch_installs");
            let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when);
            let _ = self.hierarchy.access(&req);
        }
    }

    fn set_page_table(&mut self, core: usize, table: PageTable) {
        self.mmus[core].set_page_table(table);
    }

    fn on_squash(&mut self, core: usize, _when: Cycle) {
        self.pending_ifetch[core].clear();
    }

    fn on_domain_switch(&mut self, core: usize, kind: DomainSwitch, _when: Cycle) {
        self.pending_ifetch[core].clear();
        if matches!(kind, DomainSwitch::ContextSwitch) {
            let table = self.mmus[core].page_table().clone();
            self.mmus[core].set_page_table(table);
        }
    }

    fn stats(&self) -> StatSet {
        let mut s = self.stats.clone();
        s.merge(self.hierarchy.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::addr::VirtAddr;

    fn ctx(core: usize, vaddr: u64, speculative: bool, is_store: bool) -> MemAccessCtx {
        MemAccessCtx {
            core,
            vaddr: VirtAddr::new(vaddr),
            pc: VirtAddr::new(0x40_0000),
            when: Cycle::ZERO,
            speculative,
            is_store,
            under_unresolved_branch: speculative,
            addr_tainted_spectre: false,
            addr_tainted_future: false,
        }
    }

    #[test]
    fn speculative_loads_fill_nothing() {
        let mut m = DelayLoads::new(&SystemConfig::paper_default());
        let _ = m.load(&ctx(0, 0x8000, true, false));
        let line = m.phys_line(0, VirtAddr::new(0x8000));
        assert!(!m.hierarchy().own_l1_contains(0, line));
        assert!(!m.hierarchy().l2_contains(line));
    }

    #[test]
    fn no_speculative_buffer_means_repeats_stay_slow() {
        // The naive distinction from InvisiSpec: nothing caches the data
        // between two speculative accesses to the same line. Warm the TLB
        // with a different line of the same page first so the comparison
        // sees only cache state.
        let mut m = DelayLoads::new(&SystemConfig::paper_default());
        let _ = m.load(&ctx(0, 0x8800, true, false));
        let first = m.load(&ctx(0, 0x8000, true, false)).latency().unwrap();
        let second = m.load(&ctx(0, 0x8000, true, false)).latency().unwrap();
        assert!(second + 2 >= first, "{second} vs {first}");
    }

    #[test]
    fn commit_installs_the_line() {
        let mut m = DelayLoads::new(&SystemConfig::paper_default());
        let _ = m.load(&ctx(0, 0x8000, true, false));
        let extra = m.commit_access(&ctx(0, 0x8000, false, false));
        assert_eq!(extra, 0, "the deferred fill is asynchronous");
        let line = m.phys_line(0, VirtAddr::new(0x8000));
        assert!(m.hierarchy().own_l1_contains(0, line));
    }

    #[test]
    fn remote_exclusive_lines_delay_speculative_loads() {
        let cfg = SystemConfig::paper_default();
        let mut m = DelayLoads::new(&cfg);
        m.set_page_table(0, PageTable::new(cfg.tlb.page_bytes, 0));
        m.set_page_table(1, PageTable::new(cfg.tlb.page_bytes, 0));
        let _ = m.commit_access(&ctx(1, 0x9000, false, true));
        assert_eq!(
            m.load(&ctx(0, 0x9000, true, false)),
            MemOutcome::RetryWhenNonSpeculative
        );
    }

    #[test]
    fn wrong_path_fetches_leave_no_cache_state() {
        let mut m = DelayLoads::new(&SystemConfig::paper_default());
        let _ = m.fetch_instruction(&ctx(0, 0x41_0000, true, false));
        let line = m.phys_line(0, VirtAddr::new(0x41_0000));
        assert!(!m.hierarchy().l2_contains(line));
        m.on_squash(0, Cycle::ZERO);
        m.commit_fetch(&ctx(0, 0x41_0000, false, false));
        assert!(!m.hierarchy().l2_contains(line));
    }

    #[test]
    fn committed_fetches_install_their_line() {
        let mut m = DelayLoads::new(&SystemConfig::paper_default());
        let _ = m.fetch_instruction(&ctx(0, 0x41_0000, true, false));
        // Commit happens after the speculative fetch's fill has long landed
        // (otherwise the install coalesces with the in-flight invisible miss).
        let mut commit = ctx(0, 0x41_0000, false, false);
        commit.when = Cycle::new(10_000);
        m.commit_fetch(&commit);
        let line = m.phys_line(0, VirtAddr::new(0x41_0000));
        assert!(m.hierarchy().l2_contains(line));
    }
}
