//! The unprotected baseline.
//!
//! Every figure in the paper is normalised to this configuration: a
//! conventional hierarchy in which speculative loads fill the L1/L2 as usual,
//! the prefetcher trains on every access, and nothing is flushed on
//! protection-domain switches (other than the TLBs on a context switch, which
//! every OS does).

use simkit::addr::LineAddr;
use simkit::config::SystemConfig;
use simkit::cycles::Cycle;
use simkit::stats::StatSet;

use memsys::hierarchy::MemoryHierarchy;
use memsys::tlb::{Mmu, PageTable};
use memsys::types::{AccessKind, AccessRequest};

use ooo_core::memmodel::{DomainSwitch, MemAccessCtx, MemOutcome, MemoryModel};

/// The insecure baseline memory model.
#[derive(Debug)]
pub struct Unprotected {
    config: SystemConfig,
    hierarchy: MemoryHierarchy,
    mmus: Vec<Mmu>,
    stats: StatSet,
}

impl Unprotected {
    /// Builds the baseline over a fresh hierarchy.
    pub fn new(config: &SystemConfig) -> Self {
        let mmus = (0..config.cores)
            .map(|i| {
                Mmu::new(
                    &config.tlb,
                    PageTable::new(config.tlb.page_bytes, (i as u64 + 1) << 32),
                )
            })
            .collect();
        Unprotected {
            config: config.clone(),
            hierarchy: MemoryHierarchy::new(config),
            mmus,
            stats: StatSet::new(),
        }
    }

    /// Read-only access to the hierarchy (used by the attack harness to check
    /// what speculative execution left behind).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Translates a virtual address on `core` to its physical line with no
    /// timing side effects.
    pub fn phys_line(&self, core: usize, vaddr: simkit::addr::VirtAddr) -> LineAddr {
        let pa = self.mmus[core].page_table().translate(vaddr);
        LineAddr::from_phys(pa, self.config.line_bytes)
    }

    fn data_line(&mut self, core: usize, ctx: &MemAccessCtx) -> (LineAddr, u64) {
        let t = self.mmus[core].translate_data(ctx.vaddr);
        (
            LineAddr::from_phys(t.paddr, self.config.line_bytes),
            t.latency,
        )
    }
}

impl MemoryModel for Unprotected {
    fn name(&self) -> &str {
        "unprotected"
    }

    fn fetch_instruction(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        let t = self.mmus[ctx.core].translate_inst(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when);
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + t.latency,
        }
    }

    fn load(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        let (line, xlat) = self.data_line(ctx.core, ctx);
        self.stats.bump("unprotected.loads");
        // Atomics arrive here with `is_store` set and need exclusive ownership.
        let kind = if ctx.is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let req = AccessRequest::new(ctx.core, line, kind, ctx.when).with_pc(ctx.pc.raw());
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + xlat,
        }
    }

    fn store_address_ready(&mut self, _ctx: &MemAccessCtx) {}

    fn commit_access(&mut self, ctx: &MemAccessCtx) -> u64 {
        let (line, _) = self.data_line(ctx.core, ctx);
        if ctx.is_store {
            self.stats.bump("unprotected.stores");
            let req = AccessRequest::new(ctx.core, line, AccessKind::Store, ctx.when)
                .with_pc(ctx.pc.raw());
            let _ = self.hierarchy.access(&req);
        }
        0
    }

    fn set_page_table(&mut self, core: usize, table: PageTable) {
        self.mmus[core].set_page_table(table);
    }

    fn on_squash(&mut self, _core: usize, _when: Cycle) {}

    fn on_domain_switch(&mut self, core: usize, kind: DomainSwitch, _when: Cycle) {
        // Only the ordinary TLB flush on a context switch; caches are left
        // exactly as speculation perturbed them, which is what the attacks
        // exploit.
        if matches!(kind, DomainSwitch::ContextSwitch) {
            let table = self.mmus[core].page_table().clone();
            self.mmus[core].set_page_table(table);
        }
    }

    fn stats(&self) -> StatSet {
        let mut s = self.stats.clone();
        s.merge(self.hierarchy.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::addr::VirtAddr;

    fn ctx(core: usize, vaddr: u64, speculative: bool, is_store: bool) -> MemAccessCtx {
        MemAccessCtx {
            core,
            vaddr: VirtAddr::new(vaddr),
            pc: VirtAddr::new(0x40_0000),
            when: Cycle::ZERO,
            speculative,
            is_store,
            under_unresolved_branch: speculative,
            addr_tainted_spectre: false,
            addr_tainted_future: false,
        }
    }

    #[test]
    fn speculative_loads_fill_the_l1() {
        let mut u = Unprotected::new(&SystemConfig::paper_default());
        let _ = u.load(&ctx(0, 0x8000, true, false));
        let line = u.phys_line(0, VirtAddr::new(0x8000));
        assert!(
            u.hierarchy().own_l1_contains(0, line),
            "this is exactly the Spectre vulnerability"
        );
    }

    #[test]
    fn repeat_loads_hit_quickly() {
        let mut u = Unprotected::new(&SystemConfig::paper_default());
        let first = u.load(&ctx(0, 0x8000, true, false)).latency().unwrap();
        let second = u.load(&ctx(0, 0x8000, true, false)).latency().unwrap();
        assert!(second < first);
        assert!(second <= 3);
    }

    #[test]
    fn domain_switches_do_not_clear_caches() {
        let mut u = Unprotected::new(&SystemConfig::paper_default());
        let _ = u.load(&ctx(0, 0x8000, true, false));
        u.on_domain_switch(0, DomainSwitch::ContextSwitch, Cycle::ZERO);
        let line = u.phys_line(0, VirtAddr::new(0x8000));
        assert!(u.hierarchy().own_l1_contains(0, line));
    }

    #[test]
    fn commit_of_store_updates_coherence() {
        let mut u = Unprotected::new(&SystemConfig::paper_default());
        let _ = u.commit_access(&ctx(0, 0x9000, false, true));
        let line = u.phys_line(0, VirtAddr::new(0x9000));
        assert!(u.hierarchy().own_l1_exclusive(0, line));
    }

    #[test]
    fn stats_report_hierarchy_activity() {
        let mut u = Unprotected::new(&SystemConfig::paper_default());
        let _ = u.load(&ctx(0, 0x8000, true, false));
        assert!(u.stats().counter("hierarchy.data_accesses") > 0);
        assert_eq!(u.stats().counter("unprotected.loads"), 1);
    }
}
