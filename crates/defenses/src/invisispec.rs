//! InvisiSpec-style invisible speculation (Yan et al., MICRO 2018),
//! re-implemented as a memory model over the shared hierarchy.
//!
//! Speculative loads are serviced into a per-core *speculative buffer* without
//! changing any cache state (no fills, no coherence transitions). When the
//! load reaches its visibility point, the access is *exposed*: a second,
//! ordinary access updates the caches and — because the original access did
//! not participate in coherence — may need to validate or reload the data,
//! which can delay the end of the pipeline.
//!
//! Fidelity note (also recorded in DESIGN.md): the original design exposes
//! loads as soon as their visibility condition holds (for the Spectre variant,
//! once no older unresolved branch remains; for the Future variant, once the
//! load cannot be squashed). Our core notifies memory models of safety only at
//! commit, so both variants expose at commit and the variants differ in how
//! much of the exposure latency stalls commit:
//!
//! * **Spectre** — exposure is assumed to have overlapped with the time
//!   between the visibility point and commit; commit only pays a short
//!   validation charge when the line is no longer present nearby.
//! * **Future** — the exposure could not start before commit, so the full
//!   re-access latency is paid at the head of the ROB, matching the
//!   substantially larger slowdowns the paper reports for this variant.

use std::collections::HashMap;

use simkit::addr::LineAddr;
use simkit::config::SystemConfig;
use simkit::cycles::Cycle;
use simkit::stats::StatSet;

use memsys::hierarchy::MemoryHierarchy;
use memsys::tlb::{Mmu, PageTable};
use memsys::types::{AccessKind, AccessRequest, FillLevel};

use ooo_core::memmodel::{DomainSwitch, MemAccessCtx, MemOutcome, MemoryModel};

/// Which attack model the InvisiSpec configuration defends against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvisiSpecVariant {
    /// Data may become visible once the load is not dependent on any
    /// unresolved branch.
    Spectre,
    /// Data may become visible only once the load can no longer be squashed.
    Future,
}

/// Cost (in cycles) of a successful validation at exposure time: the line was
/// still where the speculative access found it.
const VALIDATION_LATENCY: u64 = 3;

/// Per-core InvisiSpec state: the lines currently held only in the speculative
/// buffer, with the cycle at which each line's fill completes (so secondary
/// speculative accesses behave like coalesced misses rather than magically
/// hitting before the data exists).
#[derive(Debug, Default)]
struct CoreBuffer {
    lines: HashMap<LineAddr, Cycle>,
}

/// The InvisiSpec memory model.
#[derive(Debug)]
pub struct InvisiSpec {
    config: SystemConfig,
    variant: InvisiSpecVariant,
    hierarchy: MemoryHierarchy,
    mmus: Vec<Mmu>,
    buffers: Vec<CoreBuffer>,
    stats: StatSet,
}

impl InvisiSpec {
    /// Builds an InvisiSpec configuration of the given variant.
    pub fn new(config: &SystemConfig, variant: InvisiSpecVariant) -> Self {
        let mmus = (0..config.cores)
            .map(|i| {
                Mmu::new(
                    &config.tlb,
                    PageTable::new(config.tlb.page_bytes, (i as u64 + 1) << 32),
                )
            })
            .collect();
        InvisiSpec {
            config: config.clone(),
            variant,
            hierarchy: MemoryHierarchy::new(config),
            mmus,
            buffers: (0..config.cores).map(|_| CoreBuffer::default()).collect(),
            stats: StatSet::new(),
        }
    }

    /// The configured variant.
    pub fn variant(&self) -> InvisiSpecVariant {
        self.variant
    }

    /// Read-only access to the hierarchy (for the attack harness).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Translates a virtual address on `core` to its physical line without
    /// timing side effects.
    pub fn phys_line(&self, core: usize, vaddr: simkit::addr::VirtAddr) -> LineAddr {
        let pa = self.mmus[core].page_table().translate(vaddr);
        LineAddr::from_phys(pa, self.config.line_bytes)
    }

    /// Number of lines currently in `core`'s speculative buffer.
    pub fn buffer_occupancy(&self, core: usize) -> usize {
        self.buffers[core].lines.len()
    }

    fn data_line(&mut self, core: usize, ctx: &MemAccessCtx) -> (LineAddr, u64) {
        let t = self.mmus[core].translate_data(ctx.vaddr);
        (
            LineAddr::from_phys(t.paddr, self.config.line_bytes),
            t.latency,
        )
    }
}

impl MemoryModel for InvisiSpec {
    fn name(&self) -> &str {
        match self.variant {
            InvisiSpecVariant::Spectre => "invisispec-spectre",
            InvisiSpecVariant::Future => "invisispec-future",
        }
    }

    fn fetch_instruction(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        // InvisiSpec does not protect the instruction cache; fetches behave as
        // in the unprotected system.
        let t = self.mmus[ctx.core].translate_inst(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when);
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + t.latency,
        }
    }

    fn load(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        let (line, xlat) = self.data_line(ctx.core, ctx);
        self.stats.bump("invisispec.spec_loads");

        // Non-speculative accesses (atomics at the head of the ROB, retried
        // loads) behave exactly as on the unprotected hierarchy.
        if !ctx.speculative {
            let kind = if ctx.is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let req = AccessRequest::new(ctx.core, line, kind, ctx.when).with_pc(ctx.pc.raw());
            let resp = self.hierarchy.access(&req);
            self.buffers[ctx.core].lines.remove(&line);
            return MemOutcome::Done {
                latency: resp.latency + xlat,
            };
        }

        // Repeat speculative access to a buffered line: served from the
        // speculative buffer at L1 speed once the fill has arrived.
        if let Some(ready_at) = self.buffers[ctx.core].lines.get(&line).copied() {
            self.stats.bump("invisispec.spec_buffer_hits");
            let wait = ready_at.since(ctx.when);
            return MemOutcome::Done {
                latency: self.config.l1d.hit_latency.max(wait) + xlat,
            };
        }

        // An invisible access: no cache state may change, so the data is
        // fetched without filling any cache and without downgrading remote
        // owners. InvisiSpec does not claim to protect the prefetcher (§7.2 of
        // the MuonTrap paper), so the prefetcher is trained here exactly as in
        // the unprotected system.
        let req = AccessRequest::new(ctx.core, line, AccessKind::Load, ctx.when)
            .with_pc(ctx.pc.raw())
            .with_fill(FillLevel::None)
            .without_remote_downgrade();
        let resp = self.hierarchy.access(&req);
        if resp.coherence_delayed {
            // The data is exclusively owned elsewhere; an invisible read of it
            // could be observed through that owner's timing, so InvisiSpec
            // waits until the load is safe and re-issues it then.
            self.stats.bump("invisispec.delayed_remote_owned");
            return MemOutcome::RetryWhenNonSpeculative;
        }
        let latency = resp.latency + xlat;
        self.buffers[ctx.core]
            .lines
            .insert(line, ctx.when.saturating_add(latency));
        MemOutcome::Done { latency }
    }

    fn store_address_ready(&mut self, _ctx: &MemAccessCtx) {
        // Stores are not speculatively visible; nothing to do until commit.
    }

    fn commit_access(&mut self, ctx: &MemAccessCtx) -> u64 {
        let (line, _) = self.data_line(ctx.core, ctx);
        let was_buffered = self.buffers[ctx.core].lines.remove(&line).is_some();

        if ctx.is_store {
            self.stats.bump("invisispec.committed_stores");
            let req = AccessRequest::new(ctx.core, line, AccessKind::Store, ctx.when)
                .with_pc(ctx.pc.raw());
            let _ = self.hierarchy.access(&req);
            return 0;
        }

        self.stats.bump("invisispec.committed_loads");
        // Exposure: the real access that installs the line in the cache
        // hierarchy and participates in coherence. The prefetcher was already
        // trained by the original speculative access, so it is not trained
        // again here.
        let nearby_before =
            self.hierarchy.own_l1_contains(ctx.core, line) || self.hierarchy.l2_contains(line);
        let req = AccessRequest::new(ctx.core, line, AccessKind::Load, ctx.when)
            .with_pc(ctx.pc.raw())
            .without_prefetch_training();
        let resp = self.hierarchy.access(&req);

        if !was_buffered {
            // The load was never speculatively buffered (e.g. it executed
            // non-speculatively); no exposure cost beyond the access itself.
            return 0;
        }
        self.stats.bump("invisispec.exposures");
        match self.variant {
            InvisiSpecVariant::Spectre => {
                // Exposure overlapped with the window between the visibility
                // point and commit; only an unlucky validation (data no longer
                // nearby) charges the pipeline.
                if nearby_before {
                    VALIDATION_LATENCY
                } else {
                    self.stats.bump("invisispec.exposure_misses");
                    resp.latency.min(self.config.l2.hit_latency)
                }
            }
            InvisiSpecVariant::Future => {
                // The exposure could not begin until the load was unsquashable
                // (commit), so its latency lands on the critical path.
                if nearby_before {
                    VALIDATION_LATENCY
                } else {
                    self.stats.bump("invisispec.exposure_misses");
                    resp.latency
                }
            }
        }
    }

    fn set_page_table(&mut self, core: usize, table: PageTable) {
        self.mmus[core].set_page_table(table);
    }

    fn on_squash(&mut self, core: usize, _when: Cycle) {
        // Squashed loads' buffer entries are simply dropped; they were never
        // visible to anyone else.
        self.buffers[core].lines.clear();
        self.stats.bump("invisispec.squash_buffer_clears");
    }

    fn on_domain_switch(&mut self, core: usize, _kind: DomainSwitch, _when: Cycle) {
        self.buffers[core].lines.clear();
    }

    fn stats(&self) -> StatSet {
        let mut s = self.stats.clone();
        s.merge(self.hierarchy.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::addr::VirtAddr;

    fn ctx(core: usize, vaddr: u64, speculative: bool, is_store: bool) -> MemAccessCtx {
        MemAccessCtx {
            core,
            vaddr: VirtAddr::new(vaddr),
            pc: VirtAddr::new(0x40_0000),
            when: Cycle::ZERO,
            speculative,
            is_store,
            under_unresolved_branch: speculative,
            addr_tainted_spectre: false,
            addr_tainted_future: false,
        }
    }

    #[test]
    fn speculative_loads_do_not_touch_the_caches() {
        let mut m = InvisiSpec::new(&SystemConfig::paper_default(), InvisiSpecVariant::Spectre);
        let _ = m.load(&ctx(0, 0x8000, true, false));
        let line = m.phys_line(0, VirtAddr::new(0x8000));
        assert!(!m.hierarchy().own_l1_contains(0, line));
        assert!(!m.hierarchy().l2_contains(line));
        assert_eq!(m.buffer_occupancy(0), 1);
    }

    #[test]
    fn exposure_at_commit_installs_the_line() {
        let mut m = InvisiSpec::new(&SystemConfig::paper_default(), InvisiSpecVariant::Future);
        let _ = m.load(&ctx(0, 0x8000, true, false));
        let extra = m.commit_access(&ctx(0, 0x8000, false, false));
        let line = m.phys_line(0, VirtAddr::new(0x8000));
        assert!(m.hierarchy().own_l1_contains(0, line));
        assert!(extra > 0, "the Future variant pays the exposure at commit");
        assert_eq!(m.buffer_occupancy(0), 0);
    }

    #[test]
    fn spectre_variant_commit_charge_is_smaller_than_future() {
        let cfg = SystemConfig::paper_default();
        let mut spectre = InvisiSpec::new(&cfg, InvisiSpecVariant::Spectre);
        let mut future = InvisiSpec::new(&cfg, InvisiSpecVariant::Future);
        let _ = spectre.load(&ctx(0, 0x8000, true, false));
        let _ = future.load(&ctx(0, 0x8000, true, false));
        let s = spectre.commit_access(&ctx(0, 0x8000, false, false));
        let f = future.commit_access(&ctx(0, 0x8000, false, false));
        assert!(
            s <= f,
            "Spectre variant must not stall commit longer than Future ({s} vs {f})"
        );
    }

    #[test]
    fn squash_clears_the_speculative_buffer() {
        let mut m = InvisiSpec::new(&SystemConfig::paper_default(), InvisiSpecVariant::Spectre);
        let _ = m.load(&ctx(0, 0x8000, true, false));
        let _ = m.load(&ctx(0, 0x9000, true, false));
        assert_eq!(m.buffer_occupancy(0), 2);
        m.on_squash(0, Cycle::ZERO);
        assert_eq!(m.buffer_occupancy(0), 0);
        // Nothing leaked into the caches either.
        let line = m.phys_line(0, VirtAddr::new(0x8000));
        assert!(!m.hierarchy().own_l1_contains(0, line));
    }

    #[test]
    fn remote_exclusive_lines_delay_speculative_loads() {
        let cfg = SystemConfig::paper_default();
        let mut m = InvisiSpec::new(&cfg, InvisiSpecVariant::Spectre);
        m.set_page_table(0, PageTable::new(cfg.tlb.page_bytes, 0));
        m.set_page_table(1, PageTable::new(cfg.tlb.page_bytes, 0));
        let _ = m.commit_access(&ctx(1, 0x9000, false, true));
        let outcome = m.load(&ctx(0, 0x9000, true, false));
        assert_eq!(outcome, MemOutcome::RetryWhenNonSpeculative);
    }

    #[test]
    fn buffered_lines_hit_on_repeat_speculative_access() {
        let mut m = InvisiSpec::new(&SystemConfig::paper_default(), InvisiSpecVariant::Spectre);
        let first = m.load(&ctx(0, 0x8000, true, false)).latency().unwrap();
        // A repeat access *after the fill has arrived* is served from the
        // speculative buffer at L1 speed; a repeat access while the fill is
        // still in flight waits for it like a coalesced miss.
        let mut early = ctx(0, 0x8000, true, false);
        early.when = Cycle::new(1);
        let while_in_flight = m.load(&early).latency().unwrap();
        assert!(while_in_flight >= first.saturating_sub(2));
        let mut late = ctx(0, 0x8000, true, false);
        late.when = Cycle::new(first + 100);
        let second = m.load(&late).latency().unwrap();
        assert!(second < first);
    }
}
