//! Baseline and comparison memory models.
//!
//! The MuonTrap paper evaluates against an unprotected system and against two
//! published defenses re-run on the same platform: **InvisiSpec** (Yan et al.,
//! MICRO 2018) and **Speculative Taint Tracking** (Yu et al., MICRO 2019),
//! each in a "Spectre" and a "Future" (futuristic attack model) variant. This
//! crate reimplements those policies on top of the shared `memsys` hierarchy
//! so every configuration in the evaluation runs on exactly the same substrate
//! and only the protection policy differs:
//!
//! * [`Unprotected`] — the insecure baseline all figures are normalised to,
//! * [`InvisiSpec`] — speculative loads go to an invisible per-core buffer and
//!   the cache is only updated by an exposure/validation access once the load
//!   is safe (modelled at commit; see DESIGN.md for the fidelity discussion),
//! * [`Stt`] — speculative loads may execute, but *transmitters* (loads whose
//!   address depends on an unsafe speculative load's value) are blocked until
//!   the source becomes safe,
//! * the insecure L0 and every MuonTrap configuration come from the
//!   `muontrap` crate via [`simkit::config::ProtectionConfig`].
//!
//! On top of the paper's own comparison points, the crate models three
//! further competitor families (the "defense zoo"):
//!
//! * [`Fence`] — serialise at every conditional branch, the sound-but-slow
//!   software baseline of the Spectre-sandboxing line of work,
//! * [`DelayLoads`] — no speculative cache fills at all: a naive
//!   InvisiSpec-style variant with no speculative buffer and no speculative
//!   prefetcher training,
//! * [`SafeBet`] — SafeBet-style tracked-region speculation: loads to
//!   recently-and-safely-accessed regions proceed speculatively, all others
//!   are delayed (a Speculative Access Window, see [`SafeBetConfig`]).
//!
//! [`DefenseKind::build`] instantiates any configuration that appears in the
//! paper's figures; the [`DefenseRegistry`] owns the label ⇄ kind mapping
//! used by CLI flags and reports, and `FromStr`/`Display` on [`DefenseKind`]
//! let the figure binaries accept defense names on the command line.
//! [`build_defense`] is kept as a thin compatibility wrapper.

#![forbid(unsafe_code)]

pub mod delay_loads;
pub mod fence;
pub mod invisispec;
pub mod safebet;
pub mod stt;
pub mod unprotected;

use std::fmt;

use ooo_core::MemoryModel;
use simkit::config::{ProtectionConfig, SystemConfig};

pub use delay_loads::DelayLoads;
pub use fence::Fence;
pub use invisispec::{InvisiSpec, InvisiSpecVariant};
pub use safebet::{SafeBet, SafeBetConfig};
pub use stt::{Stt, SttVariant};
pub use unprotected::Unprotected;

/// Every memory-system configuration evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseKind {
    /// No protection at all (the normalisation baseline).
    Unprotected,
    /// A small L0 in front of the L1 with none of MuonTrap's protections.
    InsecureL0,
    /// Full MuonTrap (figures 3 and 4).
    MuonTrap,
    /// MuonTrap plus clear-on-misspeculate (figures 8 and 9).
    MuonTrapClearOnMisspeculate,
    /// MuonTrap with parallel L0/L1 lookup (figure 9).
    MuonTrapParallelL1,
    /// MuonTrap with an explicit protection configuration (cost breakdown).
    MuonTrapCustom(ProtectionConfig),
    /// InvisiSpec, Spectre attack model.
    InvisiSpecSpectre,
    /// InvisiSpec, futuristic attack model.
    InvisiSpecFuture,
    /// Speculative taint tracking, Spectre attack model.
    SttSpectre,
    /// Speculative taint tracking, futuristic attack model.
    SttFuture,
    /// Serialise at every conditional branch (sound-but-slow baseline).
    Fence,
    /// No speculative cache fills (naive InvisiSpec-style variant).
    DelayLoads,
    /// SafeBet-style tracked-region speculation (Speculative Access Window).
    SafeBet,
}

impl DefenseKind {
    /// A stable label used in reports and benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::Unprotected => "unprotected",
            DefenseKind::InsecureL0 => "insecure-l0",
            DefenseKind::MuonTrap => "muontrap",
            DefenseKind::MuonTrapClearOnMisspeculate => "muontrap-clear-misspec",
            DefenseKind::MuonTrapParallelL1 => "muontrap-parallel-l1",
            DefenseKind::MuonTrapCustom(_) => "muontrap-custom",
            DefenseKind::InvisiSpecSpectre => "invisispec-spectre",
            DefenseKind::InvisiSpecFuture => "invisispec-future",
            DefenseKind::SttSpectre => "stt-spectre",
            DefenseKind::SttFuture => "stt-future",
            DefenseKind::Fence => "fence",
            DefenseKind::DelayLoads => "delay-loads",
            DefenseKind::SafeBet => "safebet",
        }
    }

    /// The five configurations compared in figures 3 and 4.
    pub fn figure3_set() -> Vec<DefenseKind> {
        vec![
            DefenseKind::MuonTrap,
            DefenseKind::InvisiSpecSpectre,
            DefenseKind::InvisiSpecFuture,
            DefenseKind::SttSpectre,
            DefenseKind::SttFuture,
        ]
    }

    /// The seven Spectre-threat-model configurations of the cross-defense
    /// shoot-out figure: the insecure L0 and every defense-zoo member, in
    /// roughly increasing-protection order.
    ///
    /// # Examples
    ///
    /// ```
    /// use defenses::DefenseKind;
    ///
    /// let set = DefenseKind::shootout_set();
    /// assert!(set.contains(&DefenseKind::Fence));
    /// assert!(set.contains(&DefenseKind::MuonTrap));
    /// ```
    pub fn shootout_set() -> Vec<DefenseKind> {
        vec![
            DefenseKind::InsecureL0,
            DefenseKind::Fence,
            DefenseKind::DelayLoads,
            DefenseKind::SafeBet,
            DefenseKind::MuonTrap,
            DefenseKind::InvisiSpecSpectre,
            DefenseKind::SttSpectre,
        ]
    }

    /// Every *named* kind — all variants except [`DefenseKind::MuonTrapCustom`],
    /// which carries an arbitrary [`ProtectionConfig`] and therefore has no
    /// closed set of values.
    pub const NAMED: [DefenseKind; 12] = [
        DefenseKind::Unprotected,
        DefenseKind::InsecureL0,
        DefenseKind::MuonTrap,
        DefenseKind::MuonTrapClearOnMisspeculate,
        DefenseKind::MuonTrapParallelL1,
        DefenseKind::InvisiSpecSpectre,
        DefenseKind::InvisiSpecFuture,
        DefenseKind::SttSpectre,
        DefenseKind::SttFuture,
        DefenseKind::Fence,
        DefenseKind::DelayLoads,
        DefenseKind::SafeBet,
    ];

    /// Builds the memory model for this kind over a fresh hierarchy described
    /// by `config`. The `protection` field of `config` is overridden as
    /// required by the chosen kind.
    pub fn build(self, config: &SystemConfig) -> Box<dyn MemoryModel> {
        let mut cfg = config.clone();
        match self {
            DefenseKind::Unprotected => Box::new(Unprotected::new(&cfg)),
            DefenseKind::InsecureL0 => {
                cfg.protection = ProtectionConfig::insecure_l0();
                Box::new(muontrap::MuonTrap::new(&cfg))
            }
            DefenseKind::MuonTrap => {
                cfg.protection = ProtectionConfig::muontrap_default();
                Box::new(muontrap::MuonTrap::new(&cfg))
            }
            DefenseKind::MuonTrapClearOnMisspeculate => {
                cfg.protection = ProtectionConfig::muontrap_clear_on_misspeculate();
                Box::new(muontrap::MuonTrap::new(&cfg))
            }
            DefenseKind::MuonTrapParallelL1 => {
                cfg.protection = ProtectionConfig::muontrap_parallel_l1();
                Box::new(muontrap::MuonTrap::new(&cfg))
            }
            DefenseKind::MuonTrapCustom(protection) => {
                cfg.protection = protection;
                Box::new(muontrap::MuonTrap::new(&cfg))
            }
            DefenseKind::InvisiSpecSpectre => {
                Box::new(InvisiSpec::new(&cfg, InvisiSpecVariant::Spectre))
            }
            DefenseKind::InvisiSpecFuture => {
                Box::new(InvisiSpec::new(&cfg, InvisiSpecVariant::Future))
            }
            DefenseKind::SttSpectre => Box::new(Stt::new(&cfg, SttVariant::Spectre)),
            DefenseKind::SttFuture => Box::new(Stt::new(&cfg, SttVariant::Future)),
            DefenseKind::Fence => Box::new(Fence::new(&cfg)),
            DefenseKind::DelayLoads => Box::new(DelayLoads::new(&cfg)),
            DefenseKind::SafeBet => Box::new(SafeBet::new(&cfg)),
        }
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`DefenseKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDefenseError {
    name: String,
}

impl fmt::Display for ParseDefenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown defense `{}` (expected one of: ", self.name)?;
        for (i, kind) in DefenseKind::NAMED.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{kind}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for ParseDefenseError {}

impl std::str::FromStr for DefenseKind {
    type Err = ParseDefenseError;

    /// Parses the stable labels produced by [`DefenseKind::label`]. The
    /// `muontrap-custom` label is *not* parseable: a custom kind needs a
    /// [`ProtectionConfig`] that a bare name cannot carry.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DefenseKind::NAMED
            .into_iter()
            .find(|kind| kind.label() == s)
            .ok_or_else(|| ParseDefenseError {
                name: s.to_string(),
            })
    }
}

/// The catalogue of evaluable defense configurations.
///
/// The registry owns the name ⇄ kind mapping used by CLI flags and reports
/// (model *construction* lives on [`DefenseKind::build`], which
/// [`DefenseRegistry::build`] delegates to after the label lookup). The
/// standard registry lists every named kind; harnesses that sweep custom
/// protection configurations (figures 8 and 9) register their labelled
/// [`DefenseKind::MuonTrapCustom`] entries on top.
#[derive(Debug, Clone)]
pub struct DefenseRegistry {
    entries: Vec<(String, DefenseKind)>,
}

impl DefenseRegistry {
    /// An empty registry (build one up with [`DefenseRegistry::register`]).
    pub fn new() -> Self {
        DefenseRegistry {
            entries: Vec::new(),
        }
    }

    /// The registry of every named kind, labelled by [`DefenseKind::label`].
    pub fn standard() -> Self {
        let mut registry = DefenseRegistry::new();
        for kind in DefenseKind::NAMED {
            registry.register(kind.label(), kind);
        }
        registry
    }

    /// Adds `kind` under `label`, replacing any previous entry with the same
    /// label, and returns the registry for chaining.
    pub fn register(&mut self, label: impl Into<String>, kind: DefenseKind) -> &mut Self {
        let label = label.into();
        if let Some(entry) = self.entries.iter_mut().find(|(l, _)| *l == label) {
            entry.1 = kind;
        } else {
            self.entries.push((label, kind));
        }
        self
    }

    /// Looks up a kind by its registered label.
    pub fn lookup(&self, label: &str) -> Option<DefenseKind> {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, k)| *k)
    }

    /// Iterates over `(label, kind)` entries in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, DefenseKind)> {
        self.entries.iter().map(|(l, k)| (l.as_str(), *k))
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the memory model for the kind registered under `label`, or
    /// `None` when the label is unknown.
    pub fn build_by_label(
        &self,
        label: &str,
        config: &SystemConfig,
    ) -> Option<Box<dyn MemoryModel>> {
        self.lookup(label).map(|kind| kind.build(config))
    }

    /// Builds the memory model for `kind` over a fresh hierarchy described by
    /// `config` (delegates to [`DefenseKind::build`]).
    pub fn build(&self, kind: DefenseKind, config: &SystemConfig) -> Box<dyn MemoryModel> {
        kind.build(config)
    }
}

impl Default for DefenseRegistry {
    fn default() -> Self {
        DefenseRegistry::standard()
    }
}

/// Builds the memory model for `kind` over a fresh hierarchy described by
/// `config` (compatibility wrapper over [`DefenseKind::build`]).
pub fn build_defense(kind: DefenseKind, config: &SystemConfig) -> Box<dyn MemoryModel> {
    kind.build(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        let cfg = SystemConfig::paper_default();
        for kind in [
            DefenseKind::Unprotected,
            DefenseKind::InsecureL0,
            DefenseKind::MuonTrap,
            DefenseKind::MuonTrapClearOnMisspeculate,
            DefenseKind::MuonTrapParallelL1,
            DefenseKind::MuonTrapCustom(ProtectionConfig::muontrap_default()),
            DefenseKind::InvisiSpecSpectre,
            DefenseKind::InvisiSpecFuture,
            DefenseKind::SttSpectre,
            DefenseKind::SttFuture,
            DefenseKind::Fence,
            DefenseKind::DelayLoads,
            DefenseKind::SafeBet,
        ] {
            let model = build_defense(kind, &cfg);
            assert!(!model.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn figure3_set_has_the_five_compared_configurations() {
        let set = DefenseKind::figure3_set();
        assert_eq!(set.len(), 5);
        assert!(set.contains(&DefenseKind::MuonTrap));
        assert!(set.contains(&DefenseKind::SttFuture));
    }

    #[test]
    fn shootout_set_is_all_named_spectre_model_zoo_members() {
        let set = DefenseKind::shootout_set();
        assert_eq!(set.len(), 7);
        // Every member is a named kind (the figure is label-addressable) and
        // the normalisation baseline is not its own column.
        for kind in &set {
            assert!(DefenseKind::NAMED.contains(kind));
        }
        assert!(!set.contains(&DefenseKind::Unprotected));
        for kind in [
            DefenseKind::Fence,
            DefenseKind::DelayLoads,
            DefenseKind::SafeBet,
            DefenseKind::MuonTrap,
        ] {
            assert!(set.contains(&kind), "sound defense {kind} must compete");
        }
    }

    #[test]
    fn defense_kind_display_from_str_round_trips_every_named_variant() {
        for kind in DefenseKind::NAMED {
            let text = kind.to_string();
            assert_eq!(
                text.parse::<DefenseKind>(),
                Ok(kind),
                "round-trip failed for {text}"
            );
        }
        // The custom kind displays but deliberately does not parse: a bare
        // name cannot carry its ProtectionConfig payload.
        let custom = DefenseKind::MuonTrapCustom(ProtectionConfig::muontrap_default());
        assert_eq!(custom.to_string(), "muontrap-custom");
        assert!("muontrap-custom".parse::<DefenseKind>().is_err());
        assert!("definitely-not-a-defense".parse::<DefenseKind>().is_err());
    }

    #[test]
    fn standard_registry_covers_every_named_kind_and_builds() {
        let registry = DefenseRegistry::standard();
        let cfg = SystemConfig::paper_default();
        assert_eq!(registry.len(), DefenseKind::NAMED.len());
        for kind in DefenseKind::NAMED {
            assert_eq!(registry.lookup(kind.label()), Some(kind));
            assert!(!registry.build(kind, &cfg).name().is_empty());
            assert!(registry.build_by_label(kind.label(), &cfg).is_some());
        }
        assert_eq!(registry.lookup("nope"), None);
        assert!(registry.build_by_label("nope", &cfg).is_none());
    }

    #[test]
    fn registry_register_replaces_existing_labels() {
        let mut registry = DefenseRegistry::new();
        assert!(registry.is_empty());
        registry.register("x", DefenseKind::MuonTrap);
        registry.register("x", DefenseKind::Unprotected);
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.lookup("x"), Some(DefenseKind::Unprotected));
    }

    #[test]
    fn only_stt_requests_taint_tracking() {
        let cfg = SystemConfig::paper_default();
        assert!(build_defense(DefenseKind::SttSpectre, &cfg).needs_taint_tracking());
        assert!(build_defense(DefenseKind::SttFuture, &cfg).needs_taint_tracking());
        assert!(!build_defense(DefenseKind::MuonTrap, &cfg).needs_taint_tracking());
        assert!(!build_defense(DefenseKind::Unprotected, &cfg).needs_taint_tracking());
        assert!(!build_defense(DefenseKind::InvisiSpecFuture, &cfg).needs_taint_tracking());
    }
}
