//! Baseline and comparison memory models.
//!
//! The MuonTrap paper evaluates against an unprotected system and against two
//! published defenses re-run on the same platform: **InvisiSpec** (Yan et al.,
//! MICRO 2018) and **Speculative Taint Tracking** (Yu et al., MICRO 2019),
//! each in a "Spectre" and a "Future" (futuristic attack model) variant. This
//! crate reimplements those policies on top of the shared `memsys` hierarchy
//! so every configuration in the evaluation runs on exactly the same substrate
//! and only the protection policy differs:
//!
//! * [`Unprotected`] — the insecure baseline all figures are normalised to,
//! * [`InvisiSpec`] — speculative loads go to an invisible per-core buffer and
//!   the cache is only updated by an exposure/validation access once the load
//!   is safe (modelled at commit; see DESIGN.md for the fidelity discussion),
//! * [`Stt`] — speculative loads may execute, but *transmitters* (loads whose
//!   address depends on an unsafe speculative load's value) are blocked until
//!   the source becomes safe,
//! * the insecure L0 and every MuonTrap configuration come from the
//!   `muontrap` crate via [`simkit::config::ProtectionConfig`].
//!
//! [`DefenseKind`] and [`build_defense`] give the experiment harness a single
//! way to instantiate any configuration that appears in the paper's figures.

pub mod invisispec;
pub mod stt;
pub mod unprotected;

use ooo_core::MemoryModel;
use simkit::config::{ProtectionConfig, SystemConfig};

pub use invisispec::{InvisiSpec, InvisiSpecVariant};
pub use stt::{Stt, SttVariant};
pub use unprotected::Unprotected;

/// Every memory-system configuration evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseKind {
    /// No protection at all (the normalisation baseline).
    Unprotected,
    /// A small L0 in front of the L1 with none of MuonTrap's protections.
    InsecureL0,
    /// Full MuonTrap (figures 3 and 4).
    MuonTrap,
    /// MuonTrap plus clear-on-misspeculate (figures 8 and 9).
    MuonTrapClearOnMisspeculate,
    /// MuonTrap with parallel L0/L1 lookup (figure 9).
    MuonTrapParallelL1,
    /// MuonTrap with an explicit protection configuration (cost breakdown).
    MuonTrapCustom(ProtectionConfig),
    /// InvisiSpec, Spectre attack model.
    InvisiSpecSpectre,
    /// InvisiSpec, futuristic attack model.
    InvisiSpecFuture,
    /// Speculative taint tracking, Spectre attack model.
    SttSpectre,
    /// Speculative taint tracking, futuristic attack model.
    SttFuture,
}

impl DefenseKind {
    /// A stable label used in reports and benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::Unprotected => "unprotected",
            DefenseKind::InsecureL0 => "insecure-l0",
            DefenseKind::MuonTrap => "muontrap",
            DefenseKind::MuonTrapClearOnMisspeculate => "muontrap-clear-misspec",
            DefenseKind::MuonTrapParallelL1 => "muontrap-parallel-l1",
            DefenseKind::MuonTrapCustom(_) => "muontrap-custom",
            DefenseKind::InvisiSpecSpectre => "invisispec-spectre",
            DefenseKind::InvisiSpecFuture => "invisispec-future",
            DefenseKind::SttSpectre => "stt-spectre",
            DefenseKind::SttFuture => "stt-future",
        }
    }

    /// The five configurations compared in figures 3 and 4.
    pub fn figure3_set() -> Vec<DefenseKind> {
        vec![
            DefenseKind::MuonTrap,
            DefenseKind::InvisiSpecSpectre,
            DefenseKind::InvisiSpecFuture,
            DefenseKind::SttSpectre,
            DefenseKind::SttFuture,
        ]
    }
}

/// Builds the memory model for `kind` over a fresh hierarchy described by
/// `config`. The `protection` field of `config` is overridden as required by
/// the chosen kind.
pub fn build_defense(kind: DefenseKind, config: &SystemConfig) -> Box<dyn MemoryModel> {
    let mut cfg = config.clone();
    match kind {
        DefenseKind::Unprotected => Box::new(Unprotected::new(&cfg)),
        DefenseKind::InsecureL0 => {
            cfg.protection = ProtectionConfig::insecure_l0();
            Box::new(muontrap::MuonTrap::new(&cfg))
        }
        DefenseKind::MuonTrap => {
            cfg.protection = ProtectionConfig::muontrap_default();
            Box::new(muontrap::MuonTrap::new(&cfg))
        }
        DefenseKind::MuonTrapClearOnMisspeculate => {
            cfg.protection = ProtectionConfig::muontrap_clear_on_misspeculate();
            Box::new(muontrap::MuonTrap::new(&cfg))
        }
        DefenseKind::MuonTrapParallelL1 => {
            cfg.protection = ProtectionConfig::muontrap_parallel_l1();
            Box::new(muontrap::MuonTrap::new(&cfg))
        }
        DefenseKind::MuonTrapCustom(protection) => {
            cfg.protection = protection;
            Box::new(muontrap::MuonTrap::new(&cfg))
        }
        DefenseKind::InvisiSpecSpectre => {
            Box::new(InvisiSpec::new(&cfg, InvisiSpecVariant::Spectre))
        }
        DefenseKind::InvisiSpecFuture => Box::new(InvisiSpec::new(&cfg, InvisiSpecVariant::Future)),
        DefenseKind::SttSpectre => Box::new(Stt::new(&cfg, SttVariant::Spectre)),
        DefenseKind::SttFuture => Box::new(Stt::new(&cfg, SttVariant::Future)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        let cfg = SystemConfig::paper_default();
        for kind in [
            DefenseKind::Unprotected,
            DefenseKind::InsecureL0,
            DefenseKind::MuonTrap,
            DefenseKind::MuonTrapClearOnMisspeculate,
            DefenseKind::MuonTrapParallelL1,
            DefenseKind::MuonTrapCustom(ProtectionConfig::muontrap_default()),
            DefenseKind::InvisiSpecSpectre,
            DefenseKind::InvisiSpecFuture,
            DefenseKind::SttSpectre,
            DefenseKind::SttFuture,
        ] {
            let model = build_defense(kind, &cfg);
            assert!(!model.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn figure3_set_has_the_five_compared_configurations() {
        let set = DefenseKind::figure3_set();
        assert_eq!(set.len(), 5);
        assert!(set.contains(&DefenseKind::MuonTrap));
        assert!(set.contains(&DefenseKind::SttFuture));
    }

    #[test]
    fn only_stt_requests_taint_tracking() {
        let cfg = SystemConfig::paper_default();
        assert!(build_defense(DefenseKind::SttSpectre, &cfg).needs_taint_tracking());
        assert!(build_defense(DefenseKind::SttFuture, &cfg).needs_taint_tracking());
        assert!(!build_defense(DefenseKind::MuonTrap, &cfg).needs_taint_tracking());
        assert!(!build_defense(DefenseKind::Unprotected, &cfg).needs_taint_tracking());
        assert!(!build_defense(DefenseKind::InvisiSpecFuture, &cfg).needs_taint_tracking());
    }
}
