//! Speculative taint tracking (STT, Yu et al., MICRO 2019), re-implemented as
//! a memory model over the shared hierarchy.
//!
//! The policy family (which also covers NDA, SpecShield and Conditional
//! Speculation) does not hide speculative cache fills; instead it prevents
//! secrets from reaching a *transmitter*. Loads whose address depends on the
//! value produced by an unsafe speculative load are blocked until that source
//! load reaches its visibility point:
//!
//! * **Spectre variant** — a source load is unsafe while it has an older
//!   unresolved conditional branch;
//! * **Future variant** — a source load is unsafe while anything older than it
//!   has not finished executing (it could still be squashed).
//!
//! The dataflow tracking itself lives in the core (`ooo-core` computes the
//! `addr_tainted_*` flags only when [`MemoryModel::needs_taint_tracking`]
//! returns true); this model just applies the blocking policy and otherwise
//! behaves exactly like the unprotected hierarchy — which is why its cache
//! side effects are identical to the baseline and its cost is purely the
//! delayed execution of dependent loads.

use simkit::addr::LineAddr;
use simkit::config::SystemConfig;
use simkit::cycles::Cycle;
use simkit::stats::StatSet;

use memsys::hierarchy::MemoryHierarchy;
use memsys::tlb::{Mmu, PageTable};
use memsys::types::{AccessKind, AccessRequest};

use ooo_core::memmodel::{DomainSwitch, MemAccessCtx, MemOutcome, MemoryModel};

/// Which attack model the STT configuration defends against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SttVariant {
    /// Block transmitters only while their source load sits behind an
    /// unresolved branch.
    Spectre,
    /// Block transmitters while their source load could be squashed at all.
    Future,
}

/// The speculative-taint-tracking memory model.
#[derive(Debug)]
pub struct Stt {
    config: SystemConfig,
    variant: SttVariant,
    hierarchy: MemoryHierarchy,
    mmus: Vec<Mmu>,
    stats: StatSet,
}

impl Stt {
    /// Builds an STT configuration of the given variant.
    pub fn new(config: &SystemConfig, variant: SttVariant) -> Self {
        let mmus = (0..config.cores)
            .map(|i| {
                Mmu::new(
                    &config.tlb,
                    PageTable::new(config.tlb.page_bytes, (i as u64 + 1) << 32),
                )
            })
            .collect();
        Stt {
            config: config.clone(),
            variant,
            hierarchy: MemoryHierarchy::new(config),
            mmus,
            stats: StatSet::new(),
        }
    }

    /// The configured variant.
    pub fn variant(&self) -> SttVariant {
        self.variant
    }

    /// Read-only access to the hierarchy (for the attack harness).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Translates a virtual address on `core` to its physical line without
    /// timing side effects.
    pub fn phys_line(&self, core: usize, vaddr: simkit::addr::VirtAddr) -> LineAddr {
        let pa = self.mmus[core].page_table().translate(vaddr);
        LineAddr::from_phys(pa, self.config.line_bytes)
    }

    fn data_line(&mut self, core: usize, ctx: &MemAccessCtx) -> (LineAddr, u64) {
        let t = self.mmus[core].translate_data(ctx.vaddr);
        (
            LineAddr::from_phys(t.paddr, self.config.line_bytes),
            t.latency,
        )
    }

    fn blocked(&self, ctx: &MemAccessCtx) -> bool {
        if !ctx.speculative {
            return false;
        }
        match self.variant {
            SttVariant::Spectre => ctx.addr_tainted_spectre,
            SttVariant::Future => ctx.addr_tainted_future,
        }
    }
}

impl MemoryModel for Stt {
    fn name(&self) -> &str {
        match self.variant {
            SttVariant::Spectre => "stt-spectre",
            SttVariant::Future => "stt-future",
        }
    }

    fn needs_taint_tracking(&self) -> bool {
        true
    }

    fn fetch_instruction(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        let t = self.mmus[ctx.core].translate_inst(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when);
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + t.latency,
        }
    }

    fn load(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        if self.blocked(ctx) {
            // The address is derived from an unsafe speculative load's value:
            // executing this access would transmit the secret into the cache
            // state, so STT stalls it until the source becomes safe (the core
            // retries and the taint flag clears, or the load reaches the head
            // of the ROB and is non-speculative).
            self.stats.bump("stt.blocked_transmits");
            return MemOutcome::RetryWhenNonSpeculative;
        }
        let (line, xlat) = self.data_line(ctx.core, ctx);
        self.stats.bump("stt.loads");
        // Atomics arrive here with `is_store` set and need exclusive ownership.
        let kind = if ctx.is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let req = AccessRequest::new(ctx.core, line, kind, ctx.when).with_pc(ctx.pc.raw());
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + xlat,
        }
    }

    fn store_address_ready(&mut self, _ctx: &MemAccessCtx) {}

    fn commit_access(&mut self, ctx: &MemAccessCtx) -> u64 {
        let (line, _) = self.data_line(ctx.core, ctx);
        if ctx.is_store {
            self.stats.bump("stt.stores");
            let req = AccessRequest::new(ctx.core, line, AccessKind::Store, ctx.when)
                .with_pc(ctx.pc.raw());
            let _ = self.hierarchy.access(&req);
        }
        0
    }

    fn set_page_table(&mut self, core: usize, table: PageTable) {
        self.mmus[core].set_page_table(table);
    }

    fn on_squash(&mut self, _core: usize, _when: Cycle) {}

    fn on_domain_switch(&mut self, _core: usize, _kind: DomainSwitch, _when: Cycle) {}

    fn stats(&self) -> StatSet {
        let mut s = self.stats.clone();
        s.merge(self.hierarchy.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::addr::VirtAddr;

    fn ctx(vaddr: u64, tainted_spectre: bool, tainted_future: bool) -> MemAccessCtx {
        MemAccessCtx {
            core: 0,
            vaddr: VirtAddr::new(vaddr),
            pc: VirtAddr::new(0x40_0000),
            when: Cycle::ZERO,
            speculative: true,
            is_store: false,
            under_unresolved_branch: true,
            addr_tainted_spectre: tainted_spectre,
            addr_tainted_future: tainted_future,
        }
    }

    #[test]
    fn untainted_loads_proceed_normally() {
        let mut m = Stt::new(&SystemConfig::paper_default(), SttVariant::Spectre);
        let outcome = m.load(&ctx(0x8000, false, false));
        assert!(matches!(outcome, MemOutcome::Done { .. }));
        let line = m.phys_line(0, VirtAddr::new(0x8000));
        assert!(
            m.hierarchy().own_l1_contains(0, line),
            "STT does not hide cache fills"
        );
    }

    #[test]
    fn tainted_loads_are_blocked_per_variant() {
        let mut spectre = Stt::new(&SystemConfig::paper_default(), SttVariant::Spectre);
        let mut future = Stt::new(&SystemConfig::paper_default(), SttVariant::Future);
        // Tainted only under the futuristic model (source load no longer under
        // a branch, but still squashable): Spectre permits it, Future blocks.
        let c = ctx(0x8000, false, true);
        assert!(matches!(spectre.load(&c), MemOutcome::Done { .. }));
        assert_eq!(future.load(&c), MemOutcome::RetryWhenNonSpeculative);
        // Tainted under both models: both block.
        let c = ctx(0x9000, true, true);
        assert_eq!(spectre.load(&c), MemOutcome::RetryWhenNonSpeculative);
        assert_eq!(future.load(&c), MemOutcome::RetryWhenNonSpeculative);
        assert_eq!(spectre.stats().counter("stt.blocked_transmits"), 1);
    }

    #[test]
    fn non_speculative_accesses_are_never_blocked() {
        let mut m = Stt::new(&SystemConfig::paper_default(), SttVariant::Future);
        let mut c = ctx(0x8000, true, true);
        c.speculative = false;
        assert!(matches!(m.load(&c), MemOutcome::Done { .. }));
    }

    #[test]
    fn taint_tracking_is_requested_from_the_core() {
        let m = Stt::new(&SystemConfig::paper_default(), SttVariant::Spectre);
        assert!(m.needs_taint_tracking());
    }

    #[test]
    fn store_commit_gains_ownership() {
        let mut m = Stt::new(&SystemConfig::paper_default(), SttVariant::Spectre);
        let mut c = ctx(0xa000, false, false);
        c.is_store = true;
        c.speculative = false;
        let _ = m.commit_access(&c);
        let line = m.phys_line(0, VirtAddr::new(0xa000));
        assert!(m.hierarchy().own_l1_exclusive(0, line));
    }
}
