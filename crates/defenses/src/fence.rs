//! The fence-everywhere defense: serialise at every conditional branch.
//!
//! This is the sound-but-slow software baseline of the Spectre-sandboxing
//! line of work ("A Turning Point for Verified Spectre Sandboxing"): a
//! speculation barrier after every conditional branch, so no load (and no
//! instruction fetch that could transmit) executes while an older branch is
//! still unresolved. It is exactly the transformation the `-fenced` twins in
//! [`attacks::attack_corpus`](../attacks) embody at the program level,
//! modelled here as a memory policy so it can run unmodified binaries.
//!
//! Mechanically:
//!
//! * a data load issued under an unresolved conditional branch is refused
//!   ([`MemOutcome::RetryWhenNonSpeculative`]); the core re-polls it every
//!   cycle and the refusal lapses the moment the guarding branch resolves, so
//!   the timing is that of a fence at the branch, not of waiting for commit;
//! * an instruction fetch under an unresolved branch is serviced without
//!   filling any cache (the data must still be produced — the front end
//!   cannot stall indefinitely — but wrong-path fetches leave no trace); the
//!   lines of fetches that *commit* are installed at commit, which is when a
//!   fenced machine would have fetched them;
//! * everything non-speculative behaves exactly as on the unprotected
//!   hierarchy.

use std::collections::HashSet;

use simkit::addr::LineAddr;
use simkit::config::SystemConfig;
use simkit::cycles::Cycle;
use simkit::stats::StatSet;

use memsys::hierarchy::MemoryHierarchy;
use memsys::tlb::{Mmu, PageTable};
use memsys::types::{AccessKind, AccessRequest, FillLevel};

use ooo_core::memmodel::{DomainSwitch, MemAccessCtx, MemOutcome, MemoryModel};

/// The fence-at-every-branch memory model.
///
/// # Examples
///
/// ```
/// use defenses::Fence;
/// use ooo_core::memmodel::{MemAccessCtx, MemOutcome, MemoryModel};
/// use simkit::addr::VirtAddr;
/// use simkit::config::SystemConfig;
/// use simkit::cycles::Cycle;
///
/// let mut fence = Fence::new(&SystemConfig::paper_default());
/// let mut ctx = MemAccessCtx::simple(
///     0,
///     VirtAddr::new(0x8000),
///     VirtAddr::new(0x40_0000),
///     Cycle::ZERO,
///     false,
/// );
/// ctx.under_unresolved_branch = true;
/// // Under an unresolved branch the load is fenced off...
/// assert_eq!(fence.load(&ctx), MemOutcome::RetryWhenNonSpeculative);
/// // ...and proceeds normally once the branch resolves.
/// ctx.under_unresolved_branch = false;
/// assert!(fence.load(&ctx).latency().is_some());
/// ```
#[derive(Debug)]
pub struct Fence {
    config: SystemConfig,
    hierarchy: MemoryHierarchy,
    mmus: Vec<Mmu>,
    /// Per-core instruction lines fetched under an unresolved branch and not
    /// yet committed: invisible for now, installed if and when they commit.
    pending_ifetch: Vec<HashSet<LineAddr>>,
    stats: StatSet,
}

impl Fence {
    /// Builds the fence model over a fresh hierarchy.
    pub fn new(config: &SystemConfig) -> Self {
        let mmus = (0..config.cores)
            .map(|i| {
                Mmu::new(
                    &config.tlb,
                    PageTable::new(config.tlb.page_bytes, (i as u64 + 1) << 32),
                )
            })
            .collect();
        Fence {
            config: config.clone(),
            hierarchy: MemoryHierarchy::new(config),
            mmus,
            pending_ifetch: (0..config.cores).map(|_| HashSet::new()).collect(),
            stats: StatSet::new(),
        }
    }

    /// Read-only access to the hierarchy (for the attack harness).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Translates a virtual address on `core` to its physical line without
    /// timing side effects.
    pub fn phys_line(&self, core: usize, vaddr: simkit::addr::VirtAddr) -> LineAddr {
        let pa = self.mmus[core].page_table().translate(vaddr);
        LineAddr::from_phys(pa, self.config.line_bytes)
    }

    fn data_line(&mut self, core: usize, ctx: &MemAccessCtx) -> (LineAddr, u64) {
        let t = self.mmus[core].translate_data(ctx.vaddr);
        (
            LineAddr::from_phys(t.paddr, self.config.line_bytes),
            t.latency,
        )
    }
}

impl MemoryModel for Fence {
    fn name(&self) -> &str {
        "fence"
    }

    fn fetch_instruction(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        let t = self.mmus[ctx.core].translate_inst(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        if ctx.under_unresolved_branch {
            // A fenced machine would not have fetched past the branch yet;
            // service the fetch without perturbing any cache and install the
            // line at commit instead (when the fetch is known correct-path).
            self.stats.bump("fence.invisible_ifetches");
            let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when)
                .with_fill(FillLevel::None)
                .without_prefetch_training();
            let resp = self.hierarchy.access(&req);
            self.pending_ifetch[ctx.core].insert(line);
            return MemOutcome::Done {
                latency: resp.latency + t.latency,
            };
        }
        let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when);
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + t.latency,
        }
    }

    fn load(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        // The fence: nothing may access data memory while an older conditional
        // branch is unresolved. The core re-polls every cycle with a freshly
        // computed `under_unresolved_branch`, so the load resumes the cycle
        // the guarding branch resolves. Checked before translation so the
        // repeated polls do not touch the TLB.
        if ctx.speculative && ctx.under_unresolved_branch {
            self.stats.bump("fence.delayed_loads");
            return MemOutcome::RetryWhenNonSpeculative;
        }
        let (line, xlat) = self.data_line(ctx.core, ctx);
        self.stats.bump("fence.loads");
        // Atomics arrive here with `is_store` set and need exclusive ownership.
        let kind = if ctx.is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let req = AccessRequest::new(ctx.core, line, kind, ctx.when).with_pc(ctx.pc.raw());
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + xlat,
        }
    }

    fn store_address_ready(&mut self, _ctx: &MemAccessCtx) {
        // No speculative store prefetch: stores touch memory only at commit.
    }

    fn commit_access(&mut self, ctx: &MemAccessCtx) -> u64 {
        let (line, _) = self.data_line(ctx.core, ctx);
        if ctx.is_store {
            self.stats.bump("fence.stores");
            let req = AccessRequest::new(ctx.core, line, AccessKind::Store, ctx.when)
                .with_pc(ctx.pc.raw());
            let _ = self.hierarchy.access(&req);
        }
        0
    }

    fn commit_fetch(&mut self, ctx: &MemAccessCtx) {
        let t = self.mmus[ctx.core].translate_inst(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        if self.pending_ifetch[ctx.core].remove(&line) {
            // The fetch committed, so a fenced machine would have performed it
            // post-resolution: install the line now (off the critical path).
            self.stats.bump("fence.committed_ifetch_installs");
            let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when);
            let _ = self.hierarchy.access(&req);
        }
    }

    fn set_page_table(&mut self, core: usize, table: PageTable) {
        self.mmus[core].set_page_table(table);
    }

    fn on_squash(&mut self, core: usize, _when: Cycle) {
        // Wrong-path invisible fetches must never install; dropping the whole
        // pending set also drops correct-path entries, which simply re-install
        // on their next miss.
        self.pending_ifetch[core].clear();
    }

    fn on_domain_switch(&mut self, core: usize, kind: DomainSwitch, _when: Cycle) {
        self.pending_ifetch[core].clear();
        if matches!(kind, DomainSwitch::ContextSwitch) {
            let table = self.mmus[core].page_table().clone();
            self.mmus[core].set_page_table(table);
        }
    }

    fn stats(&self) -> StatSet {
        let mut s = self.stats.clone();
        s.merge(self.hierarchy.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::addr::VirtAddr;

    fn ctx(core: usize, vaddr: u64, speculative: bool, is_store: bool) -> MemAccessCtx {
        MemAccessCtx {
            core,
            vaddr: VirtAddr::new(vaddr),
            pc: VirtAddr::new(0x40_0000),
            when: Cycle::ZERO,
            speculative,
            is_store,
            under_unresolved_branch: speculative,
            addr_tainted_spectre: false,
            addr_tainted_future: false,
        }
    }

    #[test]
    fn loads_under_an_unresolved_branch_are_fenced_off() {
        let mut f = Fence::new(&SystemConfig::paper_default());
        assert_eq!(
            f.load(&ctx(0, 0x8000, true, false)),
            MemOutcome::RetryWhenNonSpeculative
        );
        let line = f.phys_line(0, VirtAddr::new(0x8000));
        assert!(!f.hierarchy().own_l1_contains(0, line));
        assert!(!f.hierarchy().l2_contains(line));
    }

    #[test]
    fn loads_resume_once_the_branch_resolves() {
        // Speculative (not yet committed) but no unresolved older branch:
        // the fence has been passed and the load behaves as unprotected.
        let mut f = Fence::new(&SystemConfig::paper_default());
        let mut c = ctx(0, 0x8000, true, false);
        c.under_unresolved_branch = false;
        assert!(f.load(&c).latency().is_some());
        let line = f.phys_line(0, VirtAddr::new(0x8000));
        assert!(f.hierarchy().own_l1_contains(0, line));
    }

    #[test]
    fn wrong_path_fetches_leave_no_cache_state() {
        let mut f = Fence::new(&SystemConfig::paper_default());
        let _ = f.fetch_instruction(&ctx(0, 0x41_0000, true, false));
        let line = f.phys_line(0, VirtAddr::new(0x41_0000));
        assert!(!f.hierarchy().l2_contains(line));
        f.on_squash(0, Cycle::ZERO);
        // Commit of an unrelated fetch installs nothing either.
        f.commit_fetch(&ctx(0, 0x41_0000, false, false));
        assert!(!f.hierarchy().l2_contains(line));
    }

    #[test]
    fn committed_fetches_install_their_line() {
        let mut f = Fence::new(&SystemConfig::paper_default());
        let _ = f.fetch_instruction(&ctx(0, 0x41_0000, true, false));
        // Commit happens after the speculative fetch's fill has long landed
        // (otherwise the install coalesces with the in-flight invisible miss).
        let mut commit = ctx(0, 0x41_0000, false, false);
        commit.when = Cycle::new(10_000);
        f.commit_fetch(&commit);
        let line = f.phys_line(0, VirtAddr::new(0x41_0000));
        assert!(f.hierarchy().l2_contains(line));
    }

    #[test]
    fn commit_of_store_updates_coherence() {
        let mut f = Fence::new(&SystemConfig::paper_default());
        let _ = f.commit_access(&ctx(0, 0x9000, false, true));
        let line = f.phys_line(0, VirtAddr::new(0x9000));
        assert!(f.hierarchy().own_l1_exclusive(0, line));
    }

    #[test]
    fn delayed_loads_are_counted() {
        let mut f = Fence::new(&SystemConfig::paper_default());
        let _ = f.load(&ctx(0, 0x8000, true, false));
        assert_eq!(f.stats().counter("fence.delayed_loads"), 1);
    }
}
