//! SafeBet-style tracked-region speculation (arXiv:2306.07785).
//!
//! SafeBet's observation is that most speculative loads touch memory the
//! program accessed safely only moments ago, and re-touching such memory
//! reveals nothing an observer could not already have learned. The defense
//! keeps a per-core *Speculative Access Window* (SAW) of recently and safely
//! accessed regions:
//!
//! * a load under an unresolved conditional branch whose region is **in** the
//!   window proceeds exactly as on the unprotected hierarchy (fills, trains
//!   the prefetcher, participates in coherence);
//! * a load to a region **outside** the window is delayed
//!   ([`MemOutcome::RetryWhenNonSpeculative`]) until its guarding branch
//!   resolves — at which point it performs an ordinary access and its region
//!   enters the window;
//! * only *safe* accesses (no older unresolved branch, or committed) extend
//!   the window, so a wrong path can never admit the region it is about to
//!   leak through.
//!
//! Instruction fetches get an analogous window; out-of-window fetches under an
//! unresolved branch are serviced invisibly and installed at commit. The
//! window is a recency window over the access stream — a region stays a member
//! for [`SafeBetConfig::window_accesses`] subsequent safe accesses — at
//! [`SafeBetConfig::region_bytes`] granularity (default: one cache line, the
//! finest transmitter-distinguishing granularity the litmus attacks probe).

use std::collections::{HashMap, HashSet};

use simkit::addr::LineAddr;
use simkit::config::SystemConfig;
use simkit::cycles::Cycle;
use simkit::json::{FromJson, Json, JsonError, ToJson};
use simkit::stats::StatSet;

use memsys::hierarchy::MemoryHierarchy;
use memsys::tlb::{Mmu, PageTable};
use memsys::types::{AccessKind, AccessRequest, FillLevel};

use ooo_core::memmodel::{DomainSwitch, MemAccessCtx, MemOutcome, MemoryModel};

/// Tunables of the Speculative Access Window.
///
/// # Examples
///
/// ```
/// use defenses::SafeBetConfig;
/// use simkit::json::{FromJson, ToJson};
///
/// let config = SafeBetConfig::default();
/// let round_tripped = SafeBetConfig::from_json(&config.to_json()).unwrap();
/// assert_eq!(config, round_tripped);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SafeBetConfig {
    /// Granularity at which accesses are tracked, in bytes. The default is one
    /// cache line: coarser regions would let an in-bounds access whitelist the
    /// secret-dependent line next to it.
    pub region_bytes: u64,
    /// How many subsequent safe accesses a region stays in the window for.
    pub window_accesses: u64,
}

impl Default for SafeBetConfig {
    fn default() -> Self {
        SafeBetConfig {
            region_bytes: 64,
            window_accesses: 4096,
        }
    }
}

impl ToJson for SafeBetConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("region_bytes", Json::UInt(self.region_bytes)),
            ("window_accesses", Json::UInt(self.window_accesses)),
        ])
    }
}

impl FromJson for SafeBetConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| -> Result<u64, JsonError> {
            json.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::missing(name))
        };
        let config = SafeBetConfig {
            region_bytes: field("region_bytes")?,
            window_accesses: field("window_accesses")?,
        };
        if config.region_bytes == 0 || config.window_accesses == 0 {
            return Err(JsonError::decode(
                "SafeBetConfig fields must be non-zero".to_string(),
            ));
        }
        Ok(config)
    }
}

/// One per-core Speculative Access Window: a recency window over the safe
/// access stream, held as `region -> sequence number of its last safe access`
/// with lazy pruning (amortised O(1) per access).
#[derive(Debug, Default)]
struct Saw {
    last_seen: HashMap<u64, u64>,
    seq: u64,
}

impl Saw {
    fn contains(&self, region: u64, window: u64) -> bool {
        self.last_seen
            .get(&region)
            .is_some_and(|&s| self.seq - s < window)
    }

    fn record(&mut self, region: u64, window: u64) {
        self.seq += 1;
        self.last_seen.insert(region, self.seq);
        // At most `window` distinct regions can be live; prune expired
        // entries once the map doubles past that bound.
        if self.last_seen.len() as u64 > (2 * window).max(16) {
            let (seq, w) = (self.seq, window);
            self.last_seen.retain(|_, &mut s| seq - s < w);
        }
    }

    fn clear(&mut self) {
        self.last_seen.clear();
    }
}

/// The SafeBet-style memory model.
///
/// # Examples
///
/// ```
/// use defenses::SafeBet;
/// use ooo_core::memmodel::{MemAccessCtx, MemOutcome, MemoryModel};
/// use simkit::addr::VirtAddr;
/// use simkit::config::SystemConfig;
/// use simkit::cycles::Cycle;
///
/// let mut model = SafeBet::new(&SystemConfig::paper_default());
/// let mut ctx = MemAccessCtx::simple(
///     0,
///     VirtAddr::new(0x8000),
///     VirtAddr::new(0x40_0000),
///     Cycle::ZERO,
///     false,
/// );
/// // A speculative load to a never-accessed region is delayed...
/// ctx.under_unresolved_branch = true;
/// assert_eq!(model.load(&ctx), MemOutcome::RetryWhenNonSpeculative);
/// // ...but once the region has been accessed safely,
/// ctx.under_unresolved_branch = false;
/// assert!(model.load(&ctx).latency().is_some());
/// // the same speculative load proceeds through the window.
/// ctx.under_unresolved_branch = true;
/// assert!(model.load(&ctx).latency().is_some());
/// ```
#[derive(Debug)]
pub struct SafeBet {
    config: SystemConfig,
    saw_config: SafeBetConfig,
    hierarchy: MemoryHierarchy,
    mmus: Vec<Mmu>,
    data_windows: Vec<Saw>,
    inst_windows: Vec<Saw>,
    /// Per-core instruction lines fetched out-of-window under an unresolved
    /// branch: invisible for now, installed if and when they commit.
    pending_ifetch: Vec<HashSet<LineAddr>>,
    stats: StatSet,
}

impl SafeBet {
    /// Builds the model with the default window configuration.
    pub fn new(config: &SystemConfig) -> Self {
        SafeBet::with_saw(config, SafeBetConfig::default())
    }

    /// Builds the model with an explicit window configuration.
    pub fn with_saw(config: &SystemConfig, saw_config: SafeBetConfig) -> Self {
        assert!(saw_config.region_bytes > 0, "region_bytes must be non-zero");
        assert!(
            saw_config.window_accesses > 0,
            "window_accesses must be non-zero"
        );
        let mmus = (0..config.cores)
            .map(|i| {
                Mmu::new(
                    &config.tlb,
                    PageTable::new(config.tlb.page_bytes, (i as u64 + 1) << 32),
                )
            })
            .collect();
        SafeBet {
            config: config.clone(),
            saw_config,
            hierarchy: MemoryHierarchy::new(config),
            mmus,
            data_windows: (0..config.cores).map(|_| Saw::default()).collect(),
            inst_windows: (0..config.cores).map(|_| Saw::default()).collect(),
            pending_ifetch: (0..config.cores).map(|_| HashSet::new()).collect(),
            stats: StatSet::new(),
        }
    }

    /// The window configuration in effect.
    pub fn saw_config(&self) -> SafeBetConfig {
        self.saw_config
    }

    /// Read-only access to the hierarchy (for the attack harness).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Translates a virtual address on `core` to its physical line without
    /// timing side effects.
    pub fn phys_line(&self, core: usize, vaddr: simkit::addr::VirtAddr) -> LineAddr {
        let pa = self.mmus[core].page_table().translate(vaddr);
        LineAddr::from_phys(pa, self.config.line_bytes)
    }

    /// Whether `core`'s *data* window currently covers `vaddr`'s region (test
    /// and diagnostic hook; no timing side effects).
    pub fn data_window_covers(&self, core: usize, vaddr: simkit::addr::VirtAddr) -> bool {
        let pa = self.mmus[core].page_table().translate(vaddr);
        let region = pa.raw() / self.saw_config.region_bytes;
        self.data_windows[core].contains(region, self.saw_config.window_accesses)
    }
}

impl MemoryModel for SafeBet {
    fn name(&self) -> &str {
        "safebet"
    }

    fn fetch_instruction(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        let t = self.mmus[ctx.core].translate_inst(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        let region = t.paddr.raw() / self.saw_config.region_bytes;
        let window = self.saw_config.window_accesses;
        if !ctx.under_unresolved_branch {
            self.inst_windows[ctx.core].record(region, window);
        } else if !self.inst_windows[ctx.core].contains(region, window) {
            // Out-of-window fetch on a speculative path: serviced invisibly,
            // installed at commit if it turns out to be correct-path.
            self.stats.bump("safebet.invisible_ifetches");
            let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when)
                .with_fill(FillLevel::None)
                .without_prefetch_training();
            let resp = self.hierarchy.access(&req);
            self.pending_ifetch[ctx.core].insert(line);
            return MemOutcome::Done {
                latency: resp.latency + t.latency,
            };
        }
        let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when);
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + t.latency,
        }
    }

    fn load(&mut self, ctx: &MemAccessCtx) -> MemOutcome {
        let t = self.mmus[ctx.core].translate_data(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        let region = t.paddr.raw() / self.saw_config.region_bytes;
        let window = self.saw_config.window_accesses;

        if ctx.speculative && ctx.under_unresolved_branch {
            if !self.data_windows[ctx.core].contains(region, window) {
                // Outside the window: nothing about this region was recently
                // revealed safely, so touching it now would transmit. The core
                // re-polls every cycle; the delay lapses when the guarding
                // branch resolves and the access lands in the safe arm below.
                self.stats.bump("safebet.delayed_loads");
                return MemOutcome::RetryWhenNonSpeculative;
            }
            // In-window speculation is deemed unobservable: full-speed access.
            self.stats.bump("safebet.window_hits");
        } else {
            // Safe (no unresolved older branch): the access itself extends
            // the window.
            self.data_windows[ctx.core].record(region, window);
        }
        let kind = if ctx.is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let req = AccessRequest::new(ctx.core, line, kind, ctx.when).with_pc(ctx.pc.raw());
        let resp = self.hierarchy.access(&req);
        MemOutcome::Done {
            latency: resp.latency + t.latency,
        }
    }

    fn store_address_ready(&mut self, _ctx: &MemAccessCtx) {
        // No speculative store prefetch: store addresses may be tainted.
    }

    fn commit_access(&mut self, ctx: &MemAccessCtx) -> u64 {
        let t = self.mmus[ctx.core].translate_data(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        let region = t.paddr.raw() / self.saw_config.region_bytes;
        self.data_windows[ctx.core].record(region, self.saw_config.window_accesses);
        if ctx.is_store {
            self.stats.bump("safebet.committed_stores");
            let req = AccessRequest::new(ctx.core, line, AccessKind::Store, ctx.when)
                .with_pc(ctx.pc.raw());
            let _ = self.hierarchy.access(&req);
        }
        0
    }

    fn commit_fetch(&mut self, ctx: &MemAccessCtx) {
        let t = self.mmus[ctx.core].translate_inst(ctx.vaddr);
        let line = LineAddr::from_phys(t.paddr, self.config.line_bytes);
        let region = t.paddr.raw() / self.saw_config.region_bytes;
        self.inst_windows[ctx.core].record(region, self.saw_config.window_accesses);
        if self.pending_ifetch[ctx.core].remove(&line) {
            self.stats.bump("safebet.committed_ifetch_installs");
            let req = AccessRequest::new(ctx.core, line, AccessKind::InstFetch, ctx.when);
            let _ = self.hierarchy.access(&req);
        }
    }

    fn set_page_table(&mut self, core: usize, table: PageTable) {
        self.mmus[core].set_page_table(table);
    }

    fn on_squash(&mut self, core: usize, _when: Cycle) {
        // The windows hold only safely-revealed regions, so they survive a
        // squash; the wrong path's invisible fetches must not install.
        self.pending_ifetch[core].clear();
    }

    fn on_domain_switch(&mut self, core: usize, kind: DomainSwitch, _when: Cycle) {
        // A new protection domain must not inherit (or extend) the previous
        // domain's window.
        self.data_windows[core].clear();
        self.inst_windows[core].clear();
        self.pending_ifetch[core].clear();
        if matches!(kind, DomainSwitch::ContextSwitch) {
            let table = self.mmus[core].page_table().clone();
            self.mmus[core].set_page_table(table);
        }
    }

    fn stats(&self) -> StatSet {
        let mut s = self.stats.clone();
        s.merge(self.hierarchy.stats());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::addr::VirtAddr;

    fn ctx(core: usize, vaddr: u64, speculative: bool, is_store: bool) -> MemAccessCtx {
        MemAccessCtx {
            core,
            vaddr: VirtAddr::new(vaddr),
            pc: VirtAddr::new(0x40_0000),
            when: Cycle::ZERO,
            speculative,
            is_store,
            under_unresolved_branch: speculative,
            addr_tainted_spectre: false,
            addr_tainted_future: false,
        }
    }

    #[test]
    fn cold_regions_are_delayed_and_fill_nothing() {
        let mut m = SafeBet::new(&SystemConfig::paper_default());
        assert_eq!(
            m.load(&ctx(0, 0x8000, true, false)),
            MemOutcome::RetryWhenNonSpeculative
        );
        let line = m.phys_line(0, VirtAddr::new(0x8000));
        assert!(!m.hierarchy().own_l1_contains(0, line));
        assert!(!m.hierarchy().l2_contains(line));
    }

    #[test]
    fn safe_access_admits_the_region_for_later_speculation() {
        let mut m = SafeBet::new(&SystemConfig::paper_default());
        let _ = m.load(&ctx(0, 0x8000, false, false));
        assert!(m.data_window_covers(0, VirtAddr::new(0x8000)));
        let outcome = m.load(&ctx(0, 0x8000, true, false));
        assert!(outcome.latency().is_some(), "in-window speculation runs");
    }

    #[test]
    fn window_is_line_granular_by_default() {
        // The next line over is a different region: an in-bounds access must
        // not whitelist its neighbour (that is how Spectre transmits).
        let mut m = SafeBet::new(&SystemConfig::paper_default());
        let _ = m.load(&ctx(0, 0x8000, false, false));
        assert_eq!(
            m.load(&ctx(0, 0x8040, true, false)),
            MemOutcome::RetryWhenNonSpeculative
        );
    }

    #[test]
    fn speculation_does_not_extend_the_window() {
        let mut m = SafeBet::new(&SystemConfig::paper_default());
        let _ = m.load(&ctx(0, 0x8000, false, false));
        // In-window speculative access to 0x8000 is fine, but it must not
        // admit anything new — the still-cold neighbour stays delayed.
        let _ = m.load(&ctx(0, 0x8000, true, false));
        assert!(!m.data_window_covers(0, VirtAddr::new(0x9000)));
    }

    #[test]
    fn regions_expire_after_window_accesses() {
        let cfg = SystemConfig::paper_default();
        let saw = SafeBetConfig {
            region_bytes: 64,
            window_accesses: 8,
        };
        let mut m = SafeBet::with_saw(&cfg, saw);
        let _ = m.load(&ctx(0, 0x8000, false, false));
        for i in 0..8u64 {
            let _ = m.load(&ctx(0, 0x10_0000 + i * 64, false, false));
        }
        assert!(!m.data_window_covers(0, VirtAddr::new(0x8000)));
        assert_eq!(
            m.load(&ctx(0, 0x8000, true, false)),
            MemOutcome::RetryWhenNonSpeculative
        );
    }

    #[test]
    fn domain_switch_clears_the_window() {
        let mut m = SafeBet::new(&SystemConfig::paper_default());
        let _ = m.load(&ctx(0, 0x8000, false, false));
        m.on_domain_switch(0, DomainSwitch::Syscall, Cycle::ZERO);
        assert!(!m.data_window_covers(0, VirtAddr::new(0x8000)));
    }

    #[test]
    fn windows_are_per_core() {
        let mut m = SafeBet::new(&SystemConfig::paper_default());
        let _ = m.load(&ctx(0, 0x8000, false, false));
        assert_eq!(
            m.load(&ctx(1, 0x8000, true, false)),
            MemOutcome::RetryWhenNonSpeculative
        );
    }

    #[test]
    fn out_of_window_fetches_stay_invisible_until_commit() {
        let mut m = SafeBet::new(&SystemConfig::paper_default());
        let _ = m.fetch_instruction(&ctx(0, 0x41_0000, true, false));
        let line = m.phys_line(0, VirtAddr::new(0x41_0000));
        assert!(!m.hierarchy().l2_contains(line));
        // Commit happens after the speculative fetch's fill has long landed
        // (otherwise the install coalesces with the in-flight invisible miss).
        let mut commit = ctx(0, 0x41_0000, false, false);
        commit.when = Cycle::new(10_000);
        m.commit_fetch(&commit);
        assert!(m.hierarchy().l2_contains(line));
    }

    #[test]
    fn saw_config_json_round_trips() {
        let config = SafeBetConfig {
            region_bytes: 128,
            window_accesses: 17,
        };
        assert_eq!(SafeBetConfig::from_json(&config.to_json()), Ok(config));
        assert!(SafeBetConfig::from_json(&Json::obj([])).is_err());
        let zero = Json::obj([
            ("region_bytes", Json::UInt(0)),
            ("window_accesses", Json::UInt(4)),
        ]);
        assert!(SafeBetConfig::from_json(&zero).is_err());
    }
}
