//! Seeded property tests for the defense catalogue: the name ⇄ kind mapping
//! and the JSON payloads must round-trip exactly, for every variant, under
//! arbitrary (seeded) inputs.
//!
//! The build runs offline (no `proptest`), so these drive the randomised
//! properties with the deterministic `SimRng`; a failing case reproduces
//! exactly from its printed seed.

use defenses::{DefenseKind, DefenseRegistry, SafeBetConfig};
use simkit::config::SystemConfig;
use simkit::json::{FromJson, Json, ToJson};
use simkit::rng::SimRng;

fn for_each_case(cases: u64, mut body: impl FnMut(u64, &mut SimRng)) {
    for seed in 0..cases {
        let mut rng = SimRng::seed_from(0x0d_3f3 + seed);
        body(seed, &mut rng);
    }
}

#[test]
fn every_named_kind_round_trips_through_display_and_fromstr() {
    for kind in DefenseKind::NAMED {
        let label = kind.to_string();
        assert_eq!(label, kind.label());
        assert_eq!(label.parse::<DefenseKind>(), Ok(kind), "{label}");
    }
}

#[test]
fn the_standard_registry_lists_every_named_kind_under_its_label() {
    let registry = DefenseRegistry::standard();
    assert_eq!(registry.len(), DefenseKind::NAMED.len());
    for kind in DefenseKind::NAMED {
        assert_eq!(registry.lookup(kind.label()), Some(kind), "{kind}");
    }
    // Registration order is the NAMED order, so reports are stable.
    let labels: Vec<&str> = registry.iter().map(|(l, _)| l).collect();
    let named: Vec<&str> = DefenseKind::NAMED.iter().map(|k| k.label()).collect();
    assert_eq!(labels, named);
}

#[test]
fn every_registry_entry_builds_a_model_answering_to_its_label() {
    let config = SystemConfig::small_test();
    let registry = DefenseRegistry::standard();
    for (label, kind) in registry.iter() {
        let model = kind.build(&config);
        // MuonTrap flavours share one model; everything else is eponymous.
        assert!(
            label.starts_with(model.name())
                || label.starts_with("muontrap")
                || label.starts_with("insecure-l0"),
            "label `{label}` vs model `{}`",
            model.name()
        );
    }
}

#[test]
fn corrupted_labels_never_parse() {
    // A mutation of any valid label — flipped case, appended suffix, dropped
    // prefix — must be rejected with an error naming the bad input, never
    // silently mapped to a different kind.
    for_each_case(64, |seed, rng| {
        let kind = DefenseKind::NAMED[rng.below(DefenseKind::NAMED.len() as u64) as usize];
        let label = kind.label();
        let corrupted = match rng.below(4) {
            0 => format!("{label}-{}", rng.below(100)),
            1 => format!("x{label}"),
            2 => label.to_uppercase(),
            _ => {
                let mut bytes = label.as_bytes().to_vec();
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] = if bytes[i] == b'z' { b'q' } else { bytes[i] + 1 };
                String::from_utf8(bytes).unwrap()
            }
        };
        if DefenseKind::NAMED.iter().any(|k| k.label() == corrupted) {
            return; // the mutation landed on another valid label — fine
        }
        let err = corrupted
            .parse::<DefenseKind>()
            .expect_err(&format!("case seed {seed}: `{corrupted}` must not parse"));
        assert!(
            err.to_string().contains(&corrupted),
            "case seed {seed}: error must name the input: {err}"
        );
    });
}

#[test]
fn safebet_config_round_trips_through_json_for_arbitrary_values() {
    for_each_case(64, |seed, rng| {
        let config = SafeBetConfig {
            region_bytes: rng.below(1 << 20) + 1,
            window_accesses: rng.below(1 << 24) + 1,
        };
        let json = config.to_json();
        let back =
            SafeBetConfig::from_json(&json).unwrap_or_else(|e| panic!("case seed {seed}: {e:?}"));
        assert_eq!(back, config, "case seed {seed}");
        // The encoding is a stable two-field object (fingerprint material).
        assert_eq!(
            json.get("region_bytes").and_then(Json::as_u64),
            Some(config.region_bytes)
        );
        assert_eq!(
            json.get("window_accesses").and_then(Json::as_u64),
            Some(config.window_accesses)
        );
    });
}

#[test]
fn safebet_config_rejects_degenerate_payloads() {
    let zero_region = Json::obj([
        ("region_bytes", Json::UInt(0)),
        ("window_accesses", Json::UInt(4)),
    ]);
    assert!(SafeBetConfig::from_json(&zero_region).is_err());
    let zero_window = Json::obj([
        ("region_bytes", Json::UInt(64)),
        ("window_accesses", Json::UInt(0)),
    ]);
    assert!(SafeBetConfig::from_json(&zero_window).is_err());
    let missing = Json::obj([("region_bytes", Json::UInt(64))]);
    assert!(SafeBetConfig::from_json(&missing).is_err());
}
