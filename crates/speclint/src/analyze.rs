//! The speculative-taint walker.
//!
//! # Model
//!
//! For every conditional branch in the program, the analyzer assumes the
//! branch is mispredicted and symbolically executes *both* successors as
//! entries of a bounded speculative window (the attacker trains the predictor,
//! so either direction can be the wrong-path one). Inside a window:
//!
//! * every load's result is **tainted** — under the threat model the paper
//!   shares with Spectector, a mispredicted-path load may read any secret the
//!   victim can architecturally reach, so its value must be treated as
//!   secret-influenced;
//! * taint propagates through ALU/FPU dataflow (`LoadImm`, `ReadCycle` and a
//!   call's link write produce non-secret values and kill taint; `X0` is
//!   hardwired zero and never tainted);
//! * atomics do not execute until they are non-speculative (the out-of-order
//!   core retries them at the head of the ROB), so they neither transmit nor
//!   produce speculative values: their destination is killed and the walk
//!   continues;
//! * a **gadget** is reported when taint reaches a transmitter: a load
//!   address ([`GadgetClass::V1Load`]), a store address
//!   ([`GadgetClass::TaintedStoreAddress`]), or a branch condition /
//!   indirect-jump base / return link ([`GadgetClass::TaintedBranch`]);
//! * the window closes at a serialising instruction
//!   ([`Instruction::is_serialising`]: speculation barrier, syscall, sandbox
//!   markers, halt) or when the instruction budget
//!   ([`AnalyzerConfig::window`]) runs out.
//!
//! Calls and returns are paired through a bounded return stack so gadget
//! bodies inside called functions are found; an unmatched return or an
//! indirect jump ends the path (its target is statically unknown).
//!
//! # Termination and determinism
//!
//! The per-path fuel strictly decreases, so exploration terminates on any
//! program, including ones with back-edges inside the window. States are
//! explored breadth-first and pruned against a `(pc, taint mask, return
//! stack)` memo; a [`AnalyzerConfig::max_states`] cap bounds the walk on
//! adversarial inputs and sets [`ProgramReport::truncated`] when hit. Output
//! gadgets are sorted and deduplicated, so reports are deterministic.

use std::collections::{HashMap, HashSet, VecDeque};

use uarch_isa::inst::Instruction;
use uarch_isa::prog::Program;
use uarch_isa::reg::{Reg, NUM_REGS};

use crate::gadget::{Gadget, GadgetClass, ProgramReport};

/// Tuning knobs for [`analyze_program`].
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Maximum speculative window, in dynamic instructions per mispredicted
    /// path. The default matches a generously sized reorder buffer.
    pub window: usize,
    /// Safety cap on explored states per speculative entry; hitting it sets
    /// [`ProgramReport::truncated`].
    pub max_states: usize,
    /// Maximum call depth tracked through the return stack; deeper calls end
    /// the path.
    pub max_call_depth: usize,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            window: 64,
            max_states: 4096,
            max_call_depth: 8,
        }
    }
}

/// Per-register taint: `None` means untainted; `Some(chain)` records the
/// def-use chain (instruction indices) from the originating speculative load.
type TaintMap = Vec<Option<Vec<usize>>>;

/// One frontier state of the speculative walk.
#[derive(Debug, Clone)]
struct State {
    pc: usize,
    fuel: usize,
    ret_stack: Vec<usize>,
    taint: TaintMap,
}

fn taint_mask(taint: &TaintMap) -> u32 {
    let mut mask = 0u32;
    for (i, t) in taint.iter().enumerate() {
        if t.is_some() {
            mask |= 1 << i;
        }
    }
    mask
}

/// Analyzes one program and returns its gadget report.
pub fn analyze_program(program: &Program, config: &AnalyzerConfig) -> ProgramReport {
    let mut gadgets: Vec<Gadget> = Vec::new();
    let mut seen: HashSet<(GadgetClass, usize, usize, usize)> = HashSet::new();
    let mut truncated = false;
    let mut branches = 0usize;

    for (pc, inst) in program.iter().enumerate() {
        let Instruction::Branch { target, .. } = *inst else {
            continue;
        };
        branches += 1;
        // Both directions can be the mispredicted one; explore each as its
        // own window entry (deduplicated for degenerate self-targets).
        let mut entries = [pc + 1, target];
        entries.sort_unstable();
        let mut previous = usize::MAX;
        for entry in entries {
            if entry == previous || entry >= program.len() {
                continue;
            }
            previous = entry;
            explore(
                program,
                pc,
                entry,
                config,
                &mut gadgets,
                &mut seen,
                &mut truncated,
            );
        }
    }

    gadgets.sort_by_key(|g| (g.branch, g.entry, g.transmitter, g.class));
    ProgramReport {
        program: program.name().to_string(),
        instructions: program.len(),
        branches,
        gadgets,
        truncated,
    }
}

/// Walks one speculative window opened by mispredicting `branch` into `entry`.
fn explore(
    program: &Program,
    branch: usize,
    entry: usize,
    config: &AnalyzerConfig,
    gadgets: &mut Vec<Gadget>,
    seen: &mut HashSet<(GadgetClass, usize, usize, usize)>,
    truncated: &mut bool,
) {
    let mut emit = |class: GadgetClass, transmitter: usize, chain: &[usize]| {
        let source = *chain.first().expect("taint chains start at their load");
        if seen.insert((class, branch, entry, transmitter)) {
            let mut full = chain.to_vec();
            full.push(transmitter);
            gadgets.push(Gadget {
                class,
                branch,
                entry,
                source,
                transmitter,
                chain: full,
            });
        }
    };

    // memo: best (largest) remaining fuel seen per (pc, taint mask, ret stack);
    // a revisit with no more fuel cannot find anything new.
    let mut memo: HashMap<(usize, u32, Vec<usize>), usize> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    let initial = State {
        pc: entry,
        fuel: config.window,
        ret_stack: Vec::new(),
        taint: vec![None; NUM_REGS],
    };
    memo.insert((entry, 0, Vec::new()), config.window);
    queue.push_back(initial);

    let mut explored = 0usize;
    while let Some(state) = queue.pop_front() {
        explored += 1;
        if explored > config.max_states {
            *truncated = true;
            break;
        }
        let Some(inst) = program.fetch(state.pc) else {
            continue; // malformed program: pc past the end
        };
        if inst.is_serialising() {
            continue; // the window closes here
        }

        let State {
            pc,
            fuel,
            mut ret_stack,
            mut taint,
        } = state;
        let tainted = |t: &TaintMap, r: Reg| t[r.index()].clone();
        let mut next_pcs: [Option<usize>; 2] = [None, None];

        match inst {
            Instruction::Load { rd, base, .. } => {
                let addr_taint = tainted(&taint, base);
                if let Some(chain) = &addr_taint {
                    emit(GadgetClass::V1Load, pc, chain);
                }
                // The load's result is secret-influenced either way: freshly
                // (it may read a secret) or transitively (its address already
                // was).
                let result_chain = match addr_taint {
                    Some(mut chain) => {
                        chain.push(pc);
                        chain
                    }
                    None => vec![pc],
                };
                set_taint(&mut taint, rd, Some(result_chain));
                next_pcs[0] = Some(pc + 1);
            }
            Instruction::Store { base, .. } => {
                if let Some(chain) = tainted(&taint, base) {
                    emit(GadgetClass::TaintedStoreAddress, pc, &chain);
                }
                next_pcs[0] = Some(pc + 1);
            }
            Instruction::AtomicSwap { rd, .. } | Instruction::AtomicAdd { rd, .. } => {
                // Retried when non-speculative: no speculative value, no
                // speculative line fill.
                set_taint(&mut taint, rd, None);
                next_pcs[0] = Some(pc + 1);
            }
            Instruction::Branch {
                rs1, rs2, target, ..
            } => {
                if let Some(chain) = tainted(&taint, rs1).or_else(|| tainted(&taint, rs2)) {
                    emit(GadgetClass::TaintedBranch, pc, &chain);
                }
                next_pcs = [Some(pc + 1), Some(target)];
            }
            Instruction::Jump { target } => {
                next_pcs[0] = Some(target);
            }
            Instruction::JumpIndirect { base, .. } => {
                if let Some(chain) = tainted(&taint, base) {
                    emit(GadgetClass::TaintedBranch, pc, &chain);
                }
                // Target statically unknown: the path ends.
            }
            Instruction::Call { target, link } => {
                if ret_stack.len() < config.max_call_depth {
                    set_taint(&mut taint, link, None);
                    ret_stack.push(pc + 1);
                    next_pcs[0] = Some(target);
                }
                // Deeper than the tracked stack: end the path rather than
                // follow an unpaired return later.
            }
            Instruction::Return { link } => {
                if let Some(chain) = tainted(&taint, link) {
                    emit(GadgetClass::TaintedBranch, pc, &chain);
                }
                if let Some(ret) = ret_stack.pop() {
                    next_pcs[0] = Some(ret);
                }
                // An unmatched return's target is statically unknown.
            }
            Instruction::AluReg { rd, rs1, rs2, .. } | Instruction::Fpu { rd, rs1, rs2, .. } => {
                let src = tainted(&taint, rs1).or_else(|| tainted(&taint, rs2));
                set_taint(&mut taint, rd, extend(src, pc));
                next_pcs[0] = Some(pc + 1);
            }
            Instruction::AluImm { rd, rs1, .. } => {
                let src = tainted(&taint, rs1);
                set_taint(&mut taint, rd, extend(src, pc));
                next_pcs[0] = Some(pc + 1);
            }
            Instruction::LoadImm { rd, .. } | Instruction::ReadCycle { rd } => {
                set_taint(&mut taint, rd, None);
                next_pcs[0] = Some(pc + 1);
            }
            Instruction::Nop => {
                next_pcs[0] = Some(pc + 1);
            }
            Instruction::Syscall { .. }
            | Instruction::SandboxEnter
            | Instruction::SandboxExit
            | Instruction::SpecBarrier
            | Instruction::Halt => unreachable!("serialising instructions end the path above"),
        }

        if fuel <= 1 {
            continue; // window budget exhausted
        }
        let mask = taint_mask(&taint);
        for next in next_pcs.into_iter().flatten() {
            if next >= program.len() {
                continue;
            }
            let key = (next, mask, ret_stack.clone());
            let improves = memo.get(&key).is_none_or(|&best| fuel - 1 > best);
            if improves {
                memo.insert(key, fuel - 1);
                queue.push_back(State {
                    pc: next,
                    fuel: fuel - 1,
                    ret_stack: ret_stack.clone(),
                    taint: taint.clone(),
                });
            }
        }
    }
}

/// Extends a taint chain across a dataflow step at `pc`, or returns `None`
/// for an untainted source.
fn extend(src: Option<Vec<usize>>, pc: usize) -> Option<Vec<usize>> {
    src.map(|mut chain| {
        chain.push(pc);
        chain
    })
}

/// Writes `taint` for `rd`, honouring the hardwired-zero register: `X0`
/// writes are discarded by the datapath, so it can never carry taint.
fn set_taint(taint: &mut TaintMap, rd: Reg, value: Option<Vec<usize>>) {
    if rd != Reg::X0 {
        taint[rd.index()] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::prog::ProgramBuilder;

    fn analyze(program: &Program) -> ProgramReport {
        analyze_program(program, &AnalyzerConfig::default())
    }

    /// The canonical Spectre-v1 shape: bounds check, then a dependent double
    /// load on the in-bounds path.
    fn v1_program() -> Program {
        let mut b = ProgramBuilder::new("v1");
        let oob = b.new_label();
        b.li(Reg::X1, 0x1000); // 0: &array_size
        b.load(Reg::X2, Reg::X1, 0); // 1: size (speculative source)
        b.bgeu(Reg::X3, Reg::X2, oob); // 2: bounds check
        b.li(Reg::X4, 0x2000); // 3: &array
        b.add(Reg::X4, Reg::X4, Reg::X3); // 4
        b.load(Reg::X5, Reg::X4, 0); // 5: secret = array[i] (source)
        b.shli(Reg::X5, Reg::X5, 6); // 6
        b.li(Reg::X6, 0x3000); // 7: &probe
        b.add(Reg::X6, Reg::X6, Reg::X5); // 8
        b.load(Reg::X7, Reg::X6, 0); // 9: probe[secret<<6] (transmitter)
        b.bind_label(oob);
        b.halt(); // 10
        b.build().unwrap()
    }

    #[test]
    fn flags_the_classic_v1_pair() {
        let report = analyze(&v1_program());
        assert!(!report.truncated);
        let v1: Vec<&Gadget> = report
            .gadgets
            .iter()
            .filter(|g| g.class == GadgetClass::V1Load)
            .collect();
        assert!(
            v1.iter().any(|g| g.transmitter == 9),
            "the dependent probe load must be flagged: {report:?}"
        );
        let g = v1.iter().find(|g| g.transmitter == 9).unwrap();
        assert_eq!(g.branch, 2, "window opens at the bounds check");
        assert!(g.chain.contains(&5), "chain passes through the array load");
        assert_eq!(g.chain.last(), Some(&9));
    }

    #[test]
    fn a_barrier_after_the_bounds_check_silences_the_gadget() {
        let mut b = ProgramBuilder::new("v1-fenced");
        let oob = b.new_label();
        b.li(Reg::X1, 0x1000);
        b.load(Reg::X2, Reg::X1, 0);
        b.bgeu(Reg::X3, Reg::X2, oob);
        b.spec_barrier();
        b.li(Reg::X4, 0x2000);
        b.add(Reg::X4, Reg::X4, Reg::X3);
        b.load(Reg::X5, Reg::X4, 0);
        b.shli(Reg::X5, Reg::X5, 6);
        b.li(Reg::X6, 0x3000);
        b.add(Reg::X6, Reg::X6, Reg::X5);
        b.load(Reg::X7, Reg::X6, 0);
        b.bind_label(oob);
        b.spec_barrier();
        b.halt();
        let report = analyze(&b.build().unwrap());
        assert!(
            report.is_clean(),
            "both paths are fenced before any dependent access: {report:?}"
        );
    }

    #[test]
    fn straight_line_programs_have_no_windows() {
        let mut b = ProgramBuilder::new("straight");
        b.li(Reg::X1, 0x1000);
        b.load(Reg::X2, Reg::X1, 0);
        b.add(Reg::X3, Reg::X2, Reg::X2);
        b.load(Reg::X4, Reg::X3, 0);
        b.halt();
        let report = analyze(&b.build().unwrap());
        assert_eq!(report.branches, 0);
        assert!(report.is_clean(), "no branch, no speculation: {report:?}");
    }

    #[test]
    fn counter_derived_addresses_stay_clean_across_branches() {
        // A canonical streaming loop: every address derives from li/addi, so
        // nothing a speculative load produced ever reaches a transmitter.
        let mut b = ProgramBuilder::new("stream");
        let top = b.new_label();
        b.li(Reg::X1, 0x1000);
        b.li(Reg::X2, 0);
        b.bind_label(top);
        b.load(Reg::X3, Reg::X1, 0);
        b.addi(Reg::X1, Reg::X1, 8);
        b.addi(Reg::X2, Reg::X2, 1);
        b.blt_imm(Reg::X2, 16, top);
        b.halt();
        let report = analyze(&b.build().unwrap());
        assert_eq!(report.branches, 1);
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn tainted_store_address_is_classified() {
        let mut b = ProgramBuilder::new("store-addr");
        let out = b.new_label();
        b.li(Reg::X1, 0x1000);
        b.beq(Reg::X2, Reg::X0, out); // 1
        b.load(Reg::X3, Reg::X1, 0); // 2: source
        b.store(Reg::X0, Reg::X3, 0); // 3: store to loaded address
        b.bind_label(out);
        b.halt();
        let report = analyze(&b.build().unwrap());
        assert!(report
            .gadgets
            .iter()
            .any(|g| g.class == GadgetClass::TaintedStoreAddress && g.transmitter == 3));
        // The store *data* being tainted is not a transmitter.
        assert!(!report
            .gadgets
            .iter()
            .any(|g| g.class == GadgetClass::V1Load));
    }

    #[test]
    fn tainted_branch_and_indirect_jump_are_classified() {
        let mut b = ProgramBuilder::new("br-taint");
        let out = b.new_label();
        b.li(Reg::X1, 0x1000);
        b.beq(Reg::X2, Reg::X0, out); // 1
        b.load(Reg::X3, Reg::X1, 0); // 2: source
        b.bne(Reg::X3, Reg::X0, out); // 3: branch on loaded value
        b.jump_indirect(Reg::X3, 0); // 4: indirect jump on loaded value
        b.bind_label(out);
        b.halt();
        let report = analyze(&b.build().unwrap());
        let branches: Vec<usize> = report
            .gadgets
            .iter()
            .filter(|g| g.class == GadgetClass::TaintedBranch)
            .map(|g| g.transmitter)
            .collect();
        assert!(branches.contains(&3), "{report:?}");
        assert!(branches.contains(&4), "{report:?}");
    }

    #[test]
    fn gadgets_inside_called_functions_are_found() {
        let mut b = ProgramBuilder::new("called");
        let func = b.new_label();
        let out = b.new_label();
        b.li(Reg::X1, 0x1000); // 0
        b.beq(Reg::X2, Reg::X0, out); // 1
        b.call(func, Reg::X30); // 2
        b.bind_label(out);
        b.halt(); // 3
        b.bind_label(func);
        b.load(Reg::X3, Reg::X1, 0); // 4: source
        b.load(Reg::X4, Reg::X3, 0); // 5: transmitter
        b.ret(Reg::X30); // 6
        let report = analyze(&b.build().unwrap());
        assert!(
            report
                .gadgets
                .iter()
                .any(|g| g.class == GadgetClass::V1Load && g.transmitter == 5),
            "{report:?}"
        );
    }

    #[test]
    fn the_window_budget_bounds_the_reach() {
        // The dependent load sits beyond a tiny window: with window=4 the
        // taint cannot reach it; the default window flags it.
        let mut b = ProgramBuilder::new("far");
        let out = b.new_label();
        b.li(Reg::X1, 0x1000);
        b.beq(Reg::X2, Reg::X0, out); // 1
        b.load(Reg::X3, Reg::X1, 0); // 2
        for _ in 0..8 {
            b.nop();
        }
        b.load(Reg::X4, Reg::X3, 0); // 11: transmitter
        b.bind_label(out);
        b.halt();
        let program = b.build().unwrap();
        let tight = AnalyzerConfig {
            window: 4,
            ..AnalyzerConfig::default()
        };
        assert!(analyze_program(&program, &tight).is_clean());
        assert!(!analyze(&program).is_clean());
    }

    #[test]
    fn atomics_neither_transmit_nor_source_taint() {
        let mut b = ProgramBuilder::new("atomics");
        let out = b.new_label();
        b.li(Reg::X1, 0x1000);
        b.beq(Reg::X2, Reg::X0, out); // 1
        b.load(Reg::X3, Reg::X1, 0); // 2: source
        b.amoswap(Reg::X4, Reg::X0, Reg::X1); // 3: deferred, kills X4
        b.load(Reg::X5, Reg::X4, 0); // 4: X4 is clean
        b.bind_label(out);
        b.halt();
        let report = analyze(&b.build().unwrap());
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn x0_never_carries_taint() {
        let mut b = ProgramBuilder::new("x0");
        let out = b.new_label();
        b.li(Reg::X1, 0x1000);
        b.beq(Reg::X2, Reg::X0, out); // 1
        b.emit(Instruction::Load {
            rd: Reg::X0, // write discarded by the datapath
            base: Reg::X1,
            offset: 0,
            width: uarch_isa::inst::MemWidth::Double,
        }); // 2
        b.load(Reg::X3, Reg::X0, 0); // 3: address is always zero
        b.bind_label(out);
        b.halt();
        let report = analyze(&b.build().unwrap());
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn reports_are_deterministic() {
        let program = v1_program();
        let a = analyze(&program);
        let b = analyze(&program);
        assert_eq!(a, b);
        use simkit::json::ToJson;
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }

    #[test]
    fn the_state_cap_truncates_instead_of_hanging() {
        // A dense loop nest with loads keeps generating distinct taint masks;
        // a one-state cap must bail out immediately and say so.
        let report = analyze_program(
            &v1_program(),
            &AnalyzerConfig {
                max_states: 1,
                ..AnalyzerConfig::default()
            },
        );
        assert!(report.truncated);
    }
}
