//! `speclint` — a static speculative-taint analyzer for µISA programs.
//!
//! The rest of the workspace produces *dynamic* evidence about speculative
//! leakage: the attack suite runs programs on the simulated machine and
//! checks whether a secret crosses the cache side channel. This crate gives
//! the complementary *static* view, in the spirit of Spectector's speculative
//! non-interference checking: it explores every mispredicted-branch window a
//! program can open and reports the **gadgets** — instruction sequences where
//! a speculatively loaded value reaches a transmitter before speculation can
//! resolve. No simulation is involved, so the verdict is per program, not per
//! run, and every defense can be scored against the same gadget ground truth.
//!
//! The taxonomy ([`GadgetClass`]) has three transmitter kinds:
//!
//! | class | transmitter | paper analogue |
//! |---|---|---|
//! | `v1-load` | load address | Spectre-v1 bounds-check bypass |
//! | `tainted-store-address` | store address | speculative-store line fill |
//! | `tainted-branch` | branch/indirect-jump/return steering | I-cache / BTB channel |
//!
//! # Quickstart
//!
//! ```
//! use speclint::{analyze_program, AnalyzerConfig};
//! use uarch_isa::prog::ProgramBuilder;
//! use uarch_isa::reg::Reg;
//!
//! // A classic Spectre-v1 pair behind a bounds check.
//! let mut b = ProgramBuilder::new("victim");
//! let out = b.new_label();
//! b.li(Reg::X1, 0x1000);
//! b.bgeu(Reg::X2, Reg::X3, out);
//! b.load(Reg::X4, Reg::X1, 0); // speculative load
//! b.load(Reg::X5, Reg::X4, 0); // dependent load: the transmitter
//! b.bind_label(out);
//! b.halt();
//! let program = b.build().unwrap();
//!
//! let report = analyze_program(&program, &AnalyzerConfig::default());
//! assert_eq!(report.gadgets.len(), 1);
//! assert_eq!(report.gadgets[0].class.name(), "v1-load");
//! ```
//!
//! The `speclint` binary in the `bench` crate sweeps the registered workload
//! and attack corpus with this analyzer and emits a gadget census
//! (`--json`/`--html`); `tests/speclint_cross.rs` at the workspace root
//! cross-validates the static verdicts against the dynamic attack outcomes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod analyze;
mod gadget;

pub use analyze::{analyze_program, AnalyzerConfig};
pub use gadget::{Census, Gadget, GadgetClass, ProgramReport};
