//! Gadget taxonomy and analysis reports.

use simkit::json::{Json, ToJson};

/// The class of a speculative-leak gadget, by transmitter kind.
///
/// The classes follow the Spectector-style taxonomy specialised to the cache
/// side channel MuonTrap defends: a gadget exists when a value produced by a
/// *speculative load* (the only statically-assumed secret source) reaches an
/// instruction whose resource usage depends on that value before speculation
/// can be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GadgetClass {
    /// A load whose address depends on a speculatively loaded value — the
    /// classic Spectre-v1 pair. The second access pulls a secret-selected
    /// line into the cache.
    V1Load,
    /// A store whose *address* depends on a speculatively loaded value. The
    /// store itself is squashed, but the line fill for the target address is
    /// not.
    TaintedStoreAddress,
    /// A conditional branch, indirect jump or return steered by a
    /// speculatively loaded value: the instruction-fetch stream (and thus the
    /// instruction cache) becomes the transmitter.
    TaintedBranch,
}

impl GadgetClass {
    /// All classes, in report order.
    pub const ALL: [GadgetClass; 3] = [
        GadgetClass::V1Load,
        GadgetClass::TaintedStoreAddress,
        GadgetClass::TaintedBranch,
    ];

    /// Stable kebab-case name used in JSON output and tables.
    pub fn name(self) -> &'static str {
        match self {
            GadgetClass::V1Load => "v1-load",
            GadgetClass::TaintedStoreAddress => "tainted-store-address",
            GadgetClass::TaintedBranch => "tainted-branch",
        }
    }
}

impl std::fmt::Display for GadgetClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One statically identified speculative-leak gadget.
///
/// All fields are instruction indices into the analyzed program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gadget {
    /// Transmitter classification.
    pub class: GadgetClass,
    /// The conditional branch assumed mispredicted to open the window.
    pub branch: usize,
    /// The first instruction of the mispredicted path (one of the branch's
    /// two successors).
    pub entry: usize,
    /// The speculative load whose result the taint chain originates from.
    pub source: usize,
    /// The instruction at which taint reaches a transmitter.
    pub transmitter: usize,
    /// The def-use chain from `source` to `transmitter`, inclusive.
    pub chain: Vec<usize>,
}

impl ToJson for Gadget {
    fn to_json(&self) -> Json {
        Json::obj([
            ("class", Json::Str(self.class.name().to_string())),
            ("branch", Json::UInt(self.branch as u64)),
            ("entry", Json::UInt(self.entry as u64)),
            ("source", Json::UInt(self.source as u64)),
            ("transmitter", Json::UInt(self.transmitter as u64)),
            (
                "chain",
                Json::Arr(self.chain.iter().map(|&i| Json::UInt(i as u64)).collect()),
            ),
        ])
    }
}

/// The analysis result for one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramReport {
    /// Name of the analyzed program.
    pub program: String,
    /// Static instruction count.
    pub instructions: usize,
    /// Number of conditional branches whose mispredicted windows were
    /// explored.
    pub branches: usize,
    /// Gadgets found, sorted by `(branch, entry, transmitter, class)` and
    /// deduplicated.
    pub gadgets: Vec<Gadget>,
    /// Whether any speculative window hit the state-count safety cap before
    /// the exploration was exhausted; a truncated report can under-count
    /// gadgets.
    pub truncated: bool,
}

impl ProgramReport {
    /// Gadget counts per class, indexed like [`GadgetClass::ALL`].
    pub fn counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for g in &self.gadgets {
            let slot = GadgetClass::ALL
                .iter()
                .position(|c| *c == g.class)
                .expect("class is listed");
            counts[slot] += 1;
        }
        counts
    }

    /// Whether the program is statically gadget-free.
    pub fn is_clean(&self) -> bool {
        self.gadgets.is_empty()
    }
}

impl ToJson for ProgramReport {
    fn to_json(&self) -> Json {
        let counts = self.counts();
        Json::obj([
            ("program", Json::Str(self.program.clone())),
            ("instructions", Json::UInt(self.instructions as u64)),
            ("branches", Json::UInt(self.branches as u64)),
            (
                "summary",
                Json::Obj(
                    GadgetClass::ALL
                        .iter()
                        .zip(counts.iter())
                        .map(|(c, &n)| (c.name().to_string(), Json::UInt(n as u64)))
                        .collect(),
                ),
            ),
            (
                "gadgets",
                Json::Arr(self.gadgets.iter().map(ToJson::to_json).collect()),
            ),
            ("truncated", Json::Bool(self.truncated)),
        ])
    }
}

/// A gadget census over a whole program corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Census {
    /// Speculative window (in instructions) the analysis ran with.
    pub window: usize,
    /// Per-program reports, in corpus registration order.
    pub programs: Vec<ProgramReport>,
}

impl Census {
    /// Total gadget count across the corpus.
    pub fn total_gadgets(&self) -> usize {
        self.programs.iter().map(|p| p.gadgets.len()).sum()
    }

    /// Number of programs with at least one gadget.
    pub fn flagged_programs(&self) -> usize {
        self.programs.iter().filter(|p| !p.is_clean()).count()
    }

    /// Looks up a program's report by name.
    pub fn report(&self, program: &str) -> Option<&ProgramReport> {
        self.programs.iter().find(|p| p.program == program)
    }
}

impl ToJson for Census {
    fn to_json(&self) -> Json {
        Json::obj([
            ("window", Json::UInt(self.window as u64)),
            ("total_gadgets", Json::UInt(self.total_gadgets() as u64)),
            (
                "flagged_programs",
                Json::UInt(self.flagged_programs() as u64),
            ),
            (
                "programs",
                Json::Arr(self.programs.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gadget(class: GadgetClass) -> Gadget {
        Gadget {
            class,
            branch: 1,
            entry: 2,
            source: 3,
            transmitter: 5,
            chain: vec![3, 4, 5],
        }
    }

    #[test]
    fn class_names_are_stable() {
        assert_eq!(GadgetClass::V1Load.name(), "v1-load");
        assert_eq!(
            GadgetClass::TaintedStoreAddress.to_string(),
            "tainted-store-address"
        );
        assert_eq!(GadgetClass::TaintedBranch.name(), "tainted-branch");
    }

    #[test]
    fn report_counts_partition_gadgets() {
        let report = ProgramReport {
            program: "p".to_string(),
            instructions: 10,
            branches: 1,
            gadgets: vec![
                gadget(GadgetClass::V1Load),
                gadget(GadgetClass::V1Load),
                gadget(GadgetClass::TaintedBranch),
            ],
            truncated: false,
        };
        assert_eq!(report.counts(), [2, 0, 1]);
        assert!(!report.is_clean());
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let census = Census {
            window: 64,
            programs: vec![ProgramReport {
                program: "p".to_string(),
                instructions: 10,
                branches: 1,
                gadgets: vec![gadget(GadgetClass::V1Load)],
                truncated: false,
            }],
        };
        let text = census.to_json().to_string_pretty();
        let parsed = simkit::json::parse(&text).expect("valid json");
        assert_eq!(parsed.get("total_gadgets").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed.get("flagged_programs").and_then(Json::as_u64),
            Some(1)
        );
        let programs = parsed.get("programs").and_then(Json::as_arr).unwrap();
        assert_eq!(programs[0].get("program").and_then(Json::as_str), Some("p"));
        assert_eq!(
            programs[0]
                .get("summary")
                .and_then(|s| s.get("v1-load"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }
}
