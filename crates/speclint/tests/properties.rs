//! Seeded property tests: the analyzer must terminate, never panic, and stay
//! deterministic on arbitrary control-flow soups — back-edges, unreachable
//! blocks, deep call chains, speculation depths past the window, and even
//! malformed programs that bypass `Program::validate`.
//!
//! The build runs offline (no `proptest`), so these drive the same randomised
//! properties with the deterministic `SimRng`; a failing case reproduces
//! exactly from its printed seed.

use simkit::rng::SimRng;
use speclint::{analyze_program, AnalyzerConfig, GadgetClass};
use uarch_isa::inst::{AluOp, BranchCond, Instruction, MemWidth};
use uarch_isa::prog::Program;
use uarch_isa::reg::Reg;

fn for_each_case(cases: u64, mut body: impl FnMut(u64, &mut SimRng)) {
    for seed in 0..cases {
        let mut rng = SimRng::seed_from(0x11_4713 + seed);
        body(seed, &mut rng);
    }
}

fn reg(rng: &mut SimRng) -> Reg {
    Reg::from_index(rng.below(32) as usize)
}

/// Generates an arbitrary program of `len` instructions. Targets are drawn
/// from the full index range (so back-edges and tight self-loops appear), a
/// slice of the programs gets no trailing halt, and `wild_targets` lets
/// branch/jump/call targets run past the end — programs the builder would
/// reject, which the analyzer must still survive.
fn random_program(rng: &mut SimRng, len: usize, wild_targets: bool) -> Program {
    let target_bound = if wild_targets { len + 4 } else { len };
    let mut code = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let inst = match rng.below(14) {
            0 => Instruction::Nop,
            1 => Instruction::AluReg {
                op: AluOp::Add,
                rd: reg(rng),
                rs1: reg(rng),
                rs2: reg(rng),
            },
            2 => Instruction::AluImm {
                op: AluOp::Xor,
                rd: reg(rng),
                rs1: reg(rng),
                imm: rng.below(64) as i64,
            },
            3 => Instruction::LoadImm {
                rd: reg(rng),
                imm: rng.next_u64() & 0xffff,
            },
            4 => Instruction::Load {
                rd: reg(rng),
                base: reg(rng),
                offset: (rng.below(16) * 8) as i64,
                width: MemWidth::Double,
            },
            5 => Instruction::Store {
                rs: reg(rng),
                base: reg(rng),
                offset: (rng.below(16) * 8) as i64,
                width: MemWidth::Double,
            },
            6 => Instruction::Branch {
                cond: BranchCond::Ne,
                rs1: reg(rng),
                rs2: reg(rng),
                target: rng.below(target_bound as u64) as usize,
            },
            7 => Instruction::Jump {
                target: rng.below(target_bound as u64) as usize,
            },
            8 => Instruction::Call {
                target: rng.below(target_bound as u64) as usize,
                link: reg(rng),
            },
            9 => Instruction::Return { link: reg(rng) },
            10 => Instruction::JumpIndirect {
                base: reg(rng),
                offset: 0,
            },
            11 => Instruction::AtomicAdd {
                rd: reg(rng),
                rs: reg(rng),
                base: reg(rng),
            },
            12 => Instruction::SpecBarrier,
            _ => Instruction::ReadCycle { rd: reg(rng) },
        };
        code.push(inst);
    }
    if !wild_targets || rng.chance(1, 2) {
        code.push(Instruction::Halt);
    }
    Program::from_raw_parts("fuzz", code, Vec::new())
}

#[test]
fn analyzer_terminates_and_never_panics_on_arbitrary_programs() {
    for_each_case(96, |seed, rng| {
        let len = rng.in_range(1, 120) as usize;
        let wild = rng.chance(3, 10);
        let program = random_program(rng, len, wild);
        let report = analyze_program(&program, &AnalyzerConfig::default());
        assert_eq!(report.instructions, program.len(), "case seed {seed}");
        for g in &report.gadgets {
            assert!(g.transmitter < program.len(), "case seed {seed}: {g:?}");
            assert!(g.source < program.len(), "case seed {seed}: {g:?}");
            assert_eq!(g.chain.first(), Some(&g.source), "case seed {seed}");
            assert_eq!(g.chain.last(), Some(&g.transmitter), "case seed {seed}");
            assert!(
                matches!(
                    g.class,
                    GadgetClass::V1Load
                        | GadgetClass::TaintedStoreAddress
                        | GadgetClass::TaintedBranch
                ),
                "case seed {seed}"
            );
        }
    });
}

#[test]
fn analysis_is_deterministic_across_repeated_runs() {
    for_each_case(24, |seed, rng| {
        let len = rng.in_range(4, 100) as usize;
        let program = random_program(rng, len, false);
        let first = analyze_program(&program, &AnalyzerConfig::default());
        let second = analyze_program(&program, &AnalyzerConfig::default());
        assert_eq!(first, second, "case seed {seed}");
    });
}

#[test]
fn gadgets_are_sorted_and_deduplicated() {
    for_each_case(24, |seed, rng| {
        let len = rng.in_range(4, 100) as usize;
        let program = random_program(rng, len, false);
        let report = analyze_program(&program, &AnalyzerConfig::default());
        let keys: Vec<_> = report
            .gadgets
            .iter()
            .map(|g| (g.branch, g.entry, g.transmitter, g.class))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(keys, sorted, "case seed {seed}");
    });
}

#[test]
fn shrinking_the_window_never_finds_more_gadgets() {
    // The window is an over-approximation budget: a smaller window explores a
    // subset of each mispredicted path, so its gadget set must be a subset.
    for_each_case(24, |seed, rng| {
        let len = rng.in_range(4, 80) as usize;
        let program = random_program(rng, len, false);
        let wide = analyze_program(
            &program,
            &AnalyzerConfig {
                window: 96,
                ..AnalyzerConfig::default()
            },
        );
        let narrow = analyze_program(
            &program,
            &AnalyzerConfig {
                window: 8,
                ..AnalyzerConfig::default()
            },
        );
        if wide.truncated || narrow.truncated {
            return; // the cap, not the window, bounded one of the runs
        }
        for g in &narrow.gadgets {
            assert!(
                wide.gadgets
                    .iter()
                    .any(|w| (w.branch, w.entry, w.transmitter, w.class)
                        == (g.branch, g.entry, g.transmitter, g.class)),
                "case seed {seed}: narrow-only gadget {g:?}"
            );
        }
        assert!(
            narrow.gadgets.len() <= wide.gadgets.len(),
            "case seed {seed}"
        );
    });
}

#[test]
fn a_tiny_state_cap_degrades_to_truncated_not_to_a_hang() {
    for_each_case(24, |seed, rng| {
        let len = rng.in_range(16, 120) as usize;
        let program = random_program(rng, len, false);
        let config = AnalyzerConfig {
            max_states: 8,
            ..AnalyzerConfig::default()
        };
        let report = analyze_program(&program, &config);
        // Either the exploration fit in 8 states per entry or it says it was
        // cut short; both are valid, panicking/hanging is not.
        assert_eq!(report.instructions, program.len(), "case seed {seed}");
    });
}

#[test]
fn fencing_both_branch_directions_is_always_clean() {
    // Every speculative window opens at one of a branch's two successors, so
    // a barrier right after each branch plus a barrier at each branch target
    // closes every window before anything executes speculatively. (Here the
    // targets are all redirected to one barrier island — the analyzer never
    // executes the program, only its paths matter.)
    for_each_case(24, |seed, rng| {
        let len = rng.in_range(4, 60) as usize;
        let raw = random_program(rng, len, false);
        let mut fenced = Vec::new();
        for inst in raw.iter() {
            fenced.push(*inst);
            if matches!(inst, Instruction::Branch { .. }) {
                fenced.push(Instruction::SpecBarrier);
            }
        }
        let island = fenced.len();
        fenced.push(Instruction::SpecBarrier);
        fenced.push(Instruction::Halt);
        for inst in fenced.iter_mut() {
            if let Instruction::Branch { target, .. } = inst {
                *target = island;
            }
        }
        let program = Program::from_raw_parts("fenced", fenced, Vec::new());
        let report = analyze_program(&program, &AnalyzerConfig::default());
        assert!(
            report.gadgets.is_empty(),
            "case seed {seed}: {:?}",
            report.gadgets
        );
    });
}
