//! Property tests: whatever the data, rendered markup is well-formed.
//!
//! The seed version of the workspace used `proptest`; the build runs
//! offline, so (matching `tests/properties.rs` at the workspace root) these
//! drive the same randomised properties with the deterministic [`SimRng`].
//! Each case feeds the renderers arbitrary series shapes — empty grids,
//! NaN/infinite values, zeros, huge magnitudes — and label strings full of
//! markup metacharacters, then asserts structural well-formedness: balanced
//! tags, no unescaped text, only known entities.

use reportgen::chart::{GroupedBarChart, Series, SweepLineChart};
use reportgen::html::{HtmlDocument, ReportFigure};
use reportgen::table::SummaryTable;
use simkit::rng::SimRng;

fn for_each_case(cases: u64, mut body: impl FnMut(&mut SimRng)) {
    for seed in 0..cases {
        let mut rng = SimRng::seed_from(0x5e60_0000 + seed);
        body(&mut rng);
    }
}

/// Values that exercise every edge the renderers must survive.
const VALUE_POOL: [f64; 9] = [
    0.0,
    1.0,
    0.001,
    1e9,
    1e-9,
    17.3,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
];

/// Labels full of markup metacharacters and multi-byte text.
const LABEL_POOL: [&str; 8] = [
    "plain",
    "<script>alert(1)</script>",
    "a & b",
    "\"quoted\" label",
    "it's 'quoted'",
    "</svg></g>",
    "geomean ×1.04 — µISA",
    "",
];

fn arbitrary_value(rng: &mut SimRng) -> f64 {
    VALUE_POOL[rng.below(VALUE_POOL.len() as u64) as usize]
}

fn arbitrary_label(rng: &mut SimRng) -> String {
    LABEL_POOL[rng.below(LABEL_POOL.len() as u64) as usize].to_string()
}

fn arbitrary_series(rng: &mut SimRng, len: usize) -> Series {
    Series::new(
        arbitrary_label(rng),
        (0..len).map(|_| arbitrary_value(rng)).collect::<Vec<f64>>(),
    )
}

/// Asserts `markup` is structurally well-formed: every tag balances, no
/// stray `<` survives in text or attributes, and every `&` starts one of the
/// five entities the escaper emits.
fn assert_well_formed(markup: &str, context: &str) {
    let mut stack: Vec<String> = Vec::new();
    let mut rest = markup;
    while let Some(open) = rest.find('<') {
        let text = &rest[..open];
        assert_entities_ok(text, context);
        rest = &rest[open + 1..];
        let close = rest
            .find('>')
            .unwrap_or_else(|| panic!("{context}: unterminated tag near `{rest:.40}`"));
        let tag = &rest[..close];
        rest = &rest[close + 1..];
        assert!(
            !tag.contains('<'),
            "{context}: `<` inside tag `{tag}` — unescaped text leaked into markup"
        );
        if tag.starts_with('!') {
            continue; // <!doctype html>
        }
        if let Some(name) = tag.strip_prefix('/') {
            let top = stack.pop();
            assert_eq!(
                top.as_deref(),
                Some(name),
                "{context}: closing </{name}> over {top:?}"
            );
        } else if !tag.ends_with('/') {
            let name: String = tag
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            assert!(!name.is_empty(), "{context}: nameless tag `{tag}`");
            if name != "meta" {
                // The one HTML void element the documents emit.
                stack.push(name);
            }
        }
        // Attribute values never contain a raw `<` (checked above) and their
        // `&` uses must be entities too.
        assert_entities_ok(tag, context);
    }
    assert_entities_ok(rest, context);
    assert!(stack.is_empty(), "{context}: unclosed tags {stack:?}");
}

fn assert_entities_ok(text: &str, context: &str) {
    let mut rest = text;
    while let Some(pos) = rest.find('&') {
        let tail = &rest[pos..];
        assert!(
            ["&amp;", "&lt;", "&gt;", "&quot;", "&#39;"]
                .iter()
                .any(|entity| tail.starts_with(entity)),
            "{context}: raw `&` in `{tail:.20}`"
        );
        rest = &rest[pos + 1..];
    }
}

#[test]
fn grouped_bar_charts_are_well_formed_for_arbitrary_data() {
    for_each_case(96, |rng| {
        let ncat = rng.below(6) as usize;
        let nser = rng.below(5) as usize;
        let chart = GroupedBarChart {
            categories: (0..ncat).map(|_| arbitrary_label(rng)).collect(),
            series: (0..nser).map(|_| arbitrary_series(rng, ncat)).collect(),
            x_label: arbitrary_label(rng),
            y_label: arbitrary_label(rng),
            reference_line: [None, Some(1.0), Some(f64::NAN)][rng.below(3) as usize],
        };
        let svg = chart.render();
        assert!(svg.starts_with("<svg ") && svg.ends_with("</svg>"));
        assert_well_formed(&svg, "grouped bars");
    });
}

#[test]
fn sweep_line_charts_are_well_formed_for_arbitrary_data() {
    for_each_case(96, |rng| {
        let npoints = rng.below(7) as usize;
        let nlines = rng.below(5) as usize;
        let chart = SweepLineChart {
            points: (0..npoints).map(|_| arbitrary_label(rng)).collect(),
            background: (0..nlines)
                .map(|_| arbitrary_series(rng, npoints))
                .collect(),
            highlight: arbitrary_series(rng, npoints),
            x_label: arbitrary_label(rng),
            y_label: arbitrary_label(rng),
            reference_line: [None, Some(1.0)][rng.below(2) as usize],
        };
        let svg = chart.render();
        assert!(svg.starts_with("<svg ") && svg.ends_with("</svg>"));
        assert_well_formed(&svg, "sweep lines");
    });
}

#[test]
fn tables_and_documents_are_well_formed_for_arbitrary_text() {
    for_each_case(64, |rng| {
        let cols = 1 + rng.below(4) as usize;
        let mut table = SummaryTable::new((0..cols).map(|_| arbitrary_label(rng)));
        for _ in 0..rng.below(5) {
            table.row((0..cols).map(|_| (arbitrary_label(rng), rng.below(2) == 0)));
        }
        let mut doc = HtmlDocument::new(arbitrary_label(rng));
        doc.intro(arbitrary_label(rng));
        doc.figure(ReportFigure {
            id: arbitrary_label(rng),
            title: arbitrary_label(rng),
            paper_section: arbitrary_label(rng),
            caption: arbitrary_label(rng),
            svg: GroupedBarChart {
                categories: vec![arbitrary_label(rng)],
                series: vec![arbitrary_series(rng, 1)],
                x_label: arbitrary_label(rng),
                y_label: arbitrary_label(rng),
                reference_line: None,
            }
            .render(),
            provenance: None,
        });
        doc.table(
            arbitrary_label(rng),
            arbitrary_label(rng),
            arbitrary_label(rng),
            table,
        );
        let html = doc.render();
        assert_well_formed(&html, "document");
        assert!(
            !html.contains("http") && !html.contains("<script") && !html.contains("@import"),
            "document must stay self-contained"
        );
    });
}
