//! Golden-snapshot tests: each chart type rendered from a fixed tiny input
//! must reproduce its committed output byte-for-byte.
//!
//! Rendering is deterministic text generation, so any byte difference is a
//! real change to the artefact every reader sees. After an *intentional*
//! layout or styling change, regenerate the snapshots (mirroring
//! `tests/hotpath_golden.rs` at the workspace root) with:
//!
//! ```text
//! MUONTRAP_REGEN_SVG_GOLDENS=1 cargo test -p reportgen --test svg_golden
//! ```

use std::path::PathBuf;

use reportgen::chart::{GroupedBarChart, Series, SweepLineChart};
use reportgen::html::{HtmlDocument, ReportFigure};
use reportgen::report::{figure_chart, ChartKind, FigureMeta, Provenance};
use reportgen::table::SummaryTable;
use simkit::stats::StatSet;
use simsys::session::{CellResult, RunReport};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

fn check_golden(name: &str, produced: &str) {
    let path = golden_path(name);
    if std::env::var_os("MUONTRAP_REGEN_SVG_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, produced).expect("write golden");
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with MUONTRAP_REGEN_SVG_GOLDENS=1",
            path.display()
        )
    });
    assert!(
        produced == golden,
        "{name} diverges from its golden snapshot. If the rendering change is \
         intentional, regenerate with MUONTRAP_REGEN_SVG_GOLDENS=1 and review the diff.\n\
         produced ({} bytes) vs golden ({} bytes)",
        produced.len(),
        golden.len(),
    );
}

/// The fixed grid every snapshot is rendered from: two workloads, two
/// columns, hand-written numbers (no simulation, so the snapshot can never
/// drift with the simulator).
fn tiny_report() -> RunReport {
    let cell = |workload: &str, column: &str, nt: f64, broadcasts: u64, stores: u64| {
        let mut stats = StatSet::new();
        stats.add("muontrap.store_upgrade_broadcasts", broadcasts);
        stats.add("muontrap.committed_stores", stores);
        CellResult {
            workload: workload.to_string(),
            column: column.to_string(),
            defense: column.to_string(),
            cycles: (nt * 1000.0) as u64,
            committed: 500,
            completed: true,
            cached: false,
            baseline_cycles: 1000,
            normalized_time: nt,
            stats,
        }
    };
    RunReport {
        title: "golden grid".to_string(),
        scale: Some("tiny".to_string()),
        threads: 1,
        wall_clock_ms: 12.5,
        baseline_sims: 2,
        sims_executed: 6,
        workloads: vec!["mcf-like".to_string(), "lbm-like".to_string()],
        columns: vec!["muontrap".to_string(), "stt-spectre".to_string()],
        cells: vec![
            cell("mcf-like", "muontrap", 1.04, 3, 40),
            cell("mcf-like", "stt-spectre", 1.31, 0, 40),
            cell("lbm-like", "muontrap", 1.08, 9, 120),
            cell("lbm-like", "stt-spectre", 1.52, 0, 120),
        ],
    }
}

const BAR_META: FigureMeta = FigureMeta {
    name: "golden-bars",
    kind: ChartKind::GroupedBars,
    x_label: "workload",
    y_label: "normalised execution time (×)",
    paper_section: "§6, golden",
    caption: "Golden grouped bars.",
    reference_line: Some(1.0),
};

#[test]
fn grouped_bar_chart_matches_golden() {
    check_golden("grouped_bars.svg", &figure_chart(&BAR_META, &tiny_report()));
}

#[test]
fn sweep_line_chart_matches_golden() {
    let meta = FigureMeta {
        name: "golden-sweep",
        kind: ChartKind::SweepLines,
        x_label: "filter-cache size",
        ..BAR_META
    };
    check_golden("sweep_lines.svg", &figure_chart(&meta, &tiny_report()));
}

#[test]
fn counter_ratio_chart_matches_golden() {
    let meta = FigureMeta {
        name: "golden-ratio",
        kind: ChartKind::CounterRatioBars {
            numerator: "muontrap.store_upgrade_broadcasts",
            denominator: "muontrap.committed_stores",
        },
        y_label: "invalidation-broadcast rate",
        reference_line: None,
        ..BAR_META
    };
    check_golden(
        "counter_ratio_bars.svg",
        &figure_chart(&meta, &tiny_report()),
    );
}

#[test]
fn single_series_bar_chart_matches_golden() {
    // The no-legend shape, plus a missing (NaN) mark.
    let chart = GroupedBarChart {
        categories: vec!["a".to_string(), "b".to_string(), "c".to_string()],
        series: vec![Series::new("solo", [0.8, f64::NAN, 1.6])],
        x_label: "category".to_string(),
        y_label: "value".to_string(),
        reference_line: None,
    };
    check_golden("single_series_bars.svg", &chart.render());
}

#[test]
fn sweep_chart_with_broken_lines_matches_golden() {
    let chart = SweepLineChart {
        points: vec!["64 B".to_string(), "256 B".to_string(), "1 KiB".to_string()],
        background: vec![
            Series::new("w1", [1.5, f64::NAN, 1.1]),
            Series::new("w2", [1.4, 1.2, 1.05]),
        ],
        highlight: Series::new("geomean", [1.45, 1.25, 1.07]),
        x_label: "size".to_string(),
        y_label: "slowdown".to_string(),
        reference_line: Some(1.0),
    };
    check_golden("sweep_lines_broken.svg", &chart.render());
}

#[test]
fn summary_table_matches_golden() {
    let mut table = SummaryTable::new(["kernel", "slowdown (×)", "flushes"]);
    table.row([("syscall-storm", false), ("1.24", true), ("812", true)]);
    table.row([("sandbox-hop", false), ("1.31", true), ("655", true)]);
    check_golden("summary_table.html", &table.render());
}

#[test]
fn html_document_matches_golden() {
    let report = tiny_report();
    let mut doc = HtmlDocument::new("golden document");
    doc.intro("A fixed document for the snapshot.");
    doc.figure(ReportFigure {
        id: "golden-bars".to_string(),
        title: report.title.clone(),
        paper_section: BAR_META.paper_section.to_string(),
        caption: BAR_META.caption.to_string(),
        svg: figure_chart(&BAR_META, &report),
        provenance: Some(Provenance::from_report(&report, "golden-run")),
    });
    let mut table = SummaryTable::new(["k", "v"]);
    table.row([("x", false), ("1", true)]);
    doc.table("tbl", "Table", "A fixed table.", table);
    check_golden("document.html", &doc.render());
}
