//! From [`RunReport`] to chart: per-figure metadata, the report→chart-data
//! conversions, and run provenance.
//!
//! The metadata ([`FigureMeta`]) is *declared* next to the figure
//! definitions (see `bench`'s registry) and *consumed* here: given a meta
//! and any `RunReport` with the matching grid shape — run locally, served
//! from a warm store, or folded out of sharded event logs by
//! `simsys::runner::merge_events` — [`figure_chart`] renders the same SVG,
//! because a merged report is bit-identical to a local one.

use simsys::session::RunReport;

use crate::chart::{GroupedBarChart, Series, SweepLineChart};
use crate::svg::fmt_value;

/// Which chart shape a figure renders as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChartKind {
    /// Grouped bars: workloads (plus a geomean group) on the x axis, one bar
    /// per column. The slowdown figures (3, 4, 8, 9) and the domain grid.
    GroupedBars,
    /// A sweep: columns (the swept setting) on the x axis, per-workload
    /// lines de-emphasised behind a highlighted geomean. Figures 5 and 6.
    SweepLines,
    /// Single-series bars of a per-workload counter ratio
    /// (`numerator / denominator` from each cell's stats). Figure 7.
    CounterRatioBars {
        /// Counter name of the ratio's numerator.
        numerator: &'static str,
        /// Counter name of the ratio's denominator.
        denominator: &'static str,
    },
}

/// Everything the renderer needs to know about a figure besides its data:
/// chart shape, axis titles, the caption shown under the chart, and the
/// paper section it reproduces. Declared as a `const` per figure in the
/// harness's registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureMeta {
    /// Registry name (`"fig3"` … `"domain"`).
    pub name: &'static str,
    /// Chart shape.
    pub kind: ChartKind,
    /// X-axis title.
    pub x_label: &'static str,
    /// Value-axis title.
    pub y_label: &'static str,
    /// Paper cross-reference, e.g. `"§6.1, Figure 3"`.
    pub paper_section: &'static str,
    /// Reader-facing caption: what the figure shows and how to read it.
    pub caption: &'static str,
    /// Dashed reference marker (the slowdown figures' `1.0` baseline).
    pub reference_line: Option<f64>,
}

/// Renders `report` as the SVG chart `meta` describes.
///
/// # Examples
///
/// ```
/// use defenses::DefenseKind;
/// use reportgen::report::{figure_chart, ChartKind, FigureMeta};
/// use simkit::config::SystemConfig;
/// use simsys::session::ExperimentSession;
/// use workloads::{spec_suite, Scale};
///
/// const META: FigureMeta = FigureMeta {
///     name: "demo",
///     kind: ChartKind::GroupedBars,
///     x_label: "workload",
///     y_label: "normalised execution time",
///     paper_section: "§6.1",
///     caption: "Two kernels under MuonTrap.",
///     reference_line: Some(1.0),
/// };
/// let report = ExperimentSession::new()
///     .title("demo")
///     .workloads(spec_suite(Scale::Tiny).into_iter().take(2))
///     .defenses([DefenseKind::MuonTrap])
///     .config(SystemConfig::small_test())
///     .run();
/// let svg = figure_chart(&META, &report);
/// assert!(svg.starts_with("<svg ") && svg.ends_with("</svg>"));
/// assert!(svg.contains("geomean"));
/// ```
pub fn figure_chart(meta: &FigureMeta, report: &RunReport) -> String {
    match meta.kind {
        ChartKind::GroupedBars => grouped_bars(meta, report).render(),
        ChartKind::SweepLines => sweep_lines(meta, report).render(),
        ChartKind::CounterRatioBars {
            numerator,
            denominator,
        } => counter_ratio_bars(meta, report, numerator, denominator).render(),
    }
}

fn grouped_bars(meta: &FigureMeta, report: &RunReport) -> GroupedBarChart {
    let geomeans = report.geomeans();
    let mut categories = report.workloads.clone();
    categories.push("geomean".to_string());
    let series = report
        .columns
        .iter()
        .enumerate()
        .map(|(c, column)| {
            let mut values: Vec<f64> = (0..report.workloads.len())
                .map(|w| report.cell(w, c).normalized_time)
                .collect();
            values.push(geomeans[c]);
            Series::new(column.clone(), values)
        })
        .collect();
    GroupedBarChart {
        categories,
        series,
        x_label: meta.x_label.to_string(),
        y_label: meta.y_label.to_string(),
        reference_line: meta.reference_line,
    }
}

fn sweep_lines(meta: &FigureMeta, report: &RunReport) -> SweepLineChart {
    let background = report
        .workloads
        .iter()
        .enumerate()
        .map(|(w, workload)| {
            Series::new(
                workload.clone(),
                (0..report.columns.len())
                    .map(|c| report.cell(w, c).normalized_time)
                    .collect::<Vec<f64>>(),
            )
        })
        .collect();
    SweepLineChart {
        points: report.columns.clone(),
        background,
        highlight: Series::new("geomean", report.geomeans()),
        x_label: meta.x_label.to_string(),
        y_label: meta.y_label.to_string(),
        reference_line: meta.reference_line,
    }
}

fn counter_ratio_bars(
    meta: &FigureMeta,
    report: &RunReport,
    numerator: &str,
    denominator: &str,
) -> GroupedBarChart {
    let values: Vec<f64> = (0..report.workloads.len())
        .map(|w| report.cell(w, 0).stats.ratio(numerator, denominator))
        .collect();
    GroupedBarChart {
        categories: report.workloads.clone(),
        series: vec![Series::new(meta.y_label, values)],
        x_label: meta.x_label.to_string(),
        y_label: meta.y_label.to_string(),
        reference_line: meta.reference_line,
    }
}

/// Run provenance shown under each figure: where the numbers came from and
/// how much of the grid was regenerated vs served from the warm store.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// The run id of the invocation that produced the artefact.
    pub run_id: String,
    /// Workload scale, when the session recorded one.
    pub scale: Option<String>,
    /// Grid cells in the figure.
    pub cells: usize,
    /// Simulations actually executed (store misses).
    pub sims_executed: usize,
    /// Grid cells served from the result store.
    pub cached_cells: usize,
    /// Fraction of cells served from the store.
    pub cache_hit_rate: f64,
    /// Wall-clock duration of the grid, in milliseconds.
    pub wall_clock_ms: f64,
}

impl Provenance {
    /// Extracts the provenance of `report`, stamped with the `run_id` of the
    /// rendering invocation.
    pub fn from_report(report: &RunReport, run_id: &str) -> Provenance {
        Provenance {
            run_id: run_id.to_string(),
            scale: report.scale.clone(),
            cells: report.cells.len(),
            sims_executed: report.sims_executed,
            cached_cells: report.cached_cells(),
            cache_hit_rate: report.cache_hit_rate(),
            wall_clock_ms: report.wall_clock_ms,
        }
    }

    /// One-line human rendering (the text under each figure).
    pub fn summary(&self) -> String {
        format!(
            "run {} · scale {} · {} cells: {} simulated, {} cached (hit rate {}) · {} ms",
            self.run_id,
            self.scale.as_deref().unwrap_or("unrecorded"),
            self.cells,
            self.sims_executed,
            self.cached_cells,
            fmt_value(self.cache_hit_rate),
            fmt_value(self.wall_clock_ms),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::stats::StatSet;
    use simsys::session::CellResult;

    /// A handcrafted two-workload, two-column report (no simulation).
    fn tiny_report() -> RunReport {
        let cell =
            |workload: &str, column: &str, cycles: u64, nt: f64, counters: &[(&str, u64)]| {
                let mut stats = StatSet::new();
                for (name, value) in counters {
                    stats.add(name, *value);
                }
                CellResult {
                    workload: workload.to_string(),
                    column: column.to_string(),
                    defense: column.to_string(),
                    cycles,
                    committed: cycles / 2,
                    completed: true,
                    cached: workload == "w2",
                    baseline_cycles: 1000,
                    normalized_time: nt,
                    stats,
                }
            };
        RunReport {
            title: "tiny".to_string(),
            scale: Some("tiny".to_string()),
            threads: 1,
            wall_clock_ms: 12.5,
            baseline_sims: 2,
            sims_executed: 3,
            workloads: vec!["w1".to_string(), "w2".to_string()],
            columns: vec!["c1".to_string(), "c2".to_string()],
            cells: vec![
                cell("w1", "c1", 1100, 1.1, &[("n", 1), ("d", 4)]),
                cell("w1", "c2", 1300, 1.3, &[("n", 3), ("d", 4)]),
                cell("w2", "c1", 1210, 1.21, &[("d", 8)]),
                cell("w2", "c2", 1440, 1.44, &[("n", 2), ("d", 8)]),
            ],
        }
    }

    const META: FigureMeta = FigureMeta {
        name: "t",
        kind: ChartKind::GroupedBars,
        x_label: "x",
        y_label: "y",
        paper_section: "§0",
        caption: "c",
        reference_line: Some(1.0),
    };

    #[test]
    fn grouped_bars_append_the_geomean_group() {
        let chart = grouped_bars(&META, &tiny_report());
        assert_eq!(chart.categories, vec!["w1", "w2", "geomean"]);
        assert_eq!(chart.series.len(), 2);
        assert_eq!(chart.series[0].values.len(), 3);
        let geo = (1.1f64 * 1.21).sqrt();
        assert!((chart.series[0].values[2] - geo).abs() < 1e-9);
    }

    #[test]
    fn sweep_lines_put_columns_on_the_x_axis_and_highlight_the_geomean() {
        let chart = sweep_lines(&META, &tiny_report());
        assert_eq!(chart.points, vec!["c1", "c2"]);
        assert_eq!(chart.background.len(), 2);
        assert_eq!(chart.background[0].values, vec![1.1, 1.3]);
        assert_eq!(chart.highlight.name, "geomean");
        assert_eq!(chart.highlight.values.len(), 2);
    }

    #[test]
    fn counter_ratio_bars_read_the_first_column_stats() {
        let chart = counter_ratio_bars(&META, &tiny_report(), "n", "d");
        assert_eq!(chart.categories, vec!["w1", "w2"]);
        assert_eq!(chart.series.len(), 1);
        assert_eq!(chart.series[0].values, vec![0.25, 0.0]);
    }

    #[test]
    fn provenance_counts_cached_cells_and_stamps_the_run_id() {
        let p = Provenance::from_report(&tiny_report(), "nightly-3");
        assert_eq!(p.run_id, "nightly-3");
        assert_eq!(p.cells, 4);
        assert_eq!(p.cached_cells, 2);
        assert_eq!(p.cache_hit_rate, 0.5);
        let line = p.summary();
        assert!(line.contains("nightly-3") && line.contains("2 cached"));
    }
}
