//! The chart types of the evaluation: grouped bar charts (the slowdown
//! figures) and sweep line charts (the filter-cache geometry sweeps).
//!
//! Both render to a self-contained inline-SVG fragment: explicit fills and
//! font attributes (no stylesheet required), native `<title>` tooltips on
//! every mark (no scripts), a zero-anchored value axis with nice ticks and
//! hairline gridlines, and a legend whenever more than one series is shown.
//! Layout grows with the data — wide grids widen the SVG and the embedding
//! page scales it down — and non-finite values are dropped from geometry
//! rather than corrupting the markup.

use crate::svg::{fmt_coord, fmt_value, LinearScale, SvgWriter};

/// The categorical series palette, assigned to series in fixed order (a
/// colorblind-validated ordering; never cycled — the figures never exceed
/// eight series).
pub const SERIES_COLORS: [&str; 8] = [
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4", "#008300", "#4a3aa7", "#e34948",
];

/// Chart chrome ink (axis labels, gridlines, baselines).
const INK_PRIMARY: &str = "#0b0b0b";
const INK_SECONDARY: &str = "#52514e";
const INK_MUTED: &str = "#898781";
const GRIDLINE: &str = "#e1e0d9";
const AXIS: &str = "#c3c2b7";
/// The de-emphasised per-workload lines behind a sweep's highlighted mean.
const SPAGHETTI: &str = "#c3c2b7";

const FONT: &str = "font-family:system-ui,-apple-system,Segoe UI,sans-serif";
const PLOT_HEIGHT: f64 = 250.0;
const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 20.0;
const LEGEND_ROW_H: f64 = 20.0;

/// The color assigned to series index `i` (fixed order, clamped to the last
/// slot rather than cycling hues).
pub fn series_color(i: usize) -> &'static str {
    SERIES_COLORS[i.min(SERIES_COLORS.len() - 1)]
}

/// One named series of values, index-aligned with a chart's categories.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend / tooltip name.
    pub name: String,
    /// One value per category; non-finite entries render as missing marks.
    pub values: Vec<f64>,
}

impl Series {
    /// A series from a name and values.
    pub fn new(name: impl Into<String>, values: impl Into<Vec<f64>>) -> Series {
        Series {
            name: name.into(),
            values: values.into(),
        }
    }
}

/// Estimated pixel advance of `text` at the 11–12 px label sizes the charts
/// use. Layout only needs a stable upper-bound-ish estimate (SVG text is not
/// measured at render time); deterministic is what matters.
fn text_advance(text: &str) -> f64 {
    text.chars().count() as f64 * 6.4
}

/// The largest finite value in the series set, folded with any reference
/// line, for the value-axis domain.
fn finite_max<'a>(series: impl Iterator<Item = &'a Series>, reference: Option<f64>) -> f64 {
    let mut max = reference.unwrap_or(0.0);
    for s in series {
        for &v in &s.values {
            if v.is_finite() && v > max {
                max = v;
            }
        }
    }
    max
}

/// The wrap layout of the legend row(s) at the top of a chart: one `(x, y)`
/// anchor per item (baseline of the first row at y = 14), plus the total
/// height the plot must leave for it. One function computes both so the
/// reserved height can never desync from where the swatches actually land.
/// Empty when `items.len() < 2`: a single series is named by the figure
/// title, so a legend box would be noise.
fn legend_layout(items: &[(&str, String)], width: f64) -> (Vec<(f64, f64)>, f64) {
    if items.len() < 2 {
        return (Vec::new(), 0.0);
    }
    let mut positions = Vec::with_capacity(items.len());
    let mut x = MARGIN_LEFT;
    let mut y = 14.0;
    for (_, label) in items {
        let advance = 18.0 + text_advance(label) + 14.0;
        if x + advance > width - MARGIN_RIGHT && x > MARGIN_LEFT {
            y += LEGEND_ROW_H;
            x = MARGIN_LEFT;
        }
        positions.push((x, y));
        x += advance;
    }
    (positions, y - 14.0 + LEGEND_ROW_H + 6.0)
}

fn draw_legend(svg: &mut SvgWriter, items: &[(&str, String)], positions: &[(f64, f64)]) {
    for ((color, label), &(x, y)) in items.iter().zip(positions) {
        svg.element(
            "rect",
            &[
                ("x", &fmt_coord(x)),
                ("y", &fmt_coord(y - 9.0)),
                ("width", "12"),
                ("height", "12"),
                ("rx", "3"),
                ("fill", color),
            ],
        );
        svg.text(
            x + 18.0,
            y + 1.0,
            label,
            &[("fill", INK_SECONDARY), ("font-size", "12")],
        );
    }
}

/// Draws the zero-anchored value axis: hairline gridlines, muted tick
/// labels, the axis baseline, and a rotated axis title.
fn draw_value_axis(
    svg: &mut SvgWriter,
    scale: &LinearScale,
    y_label: &str,
    plot_top: f64,
    plot_bottom: f64,
    plot_right: f64,
) {
    for tick in scale.ticks(6) {
        let y = scale.pos(tick);
        svg.element(
            "line",
            &[
                ("x1", &fmt_coord(MARGIN_LEFT)),
                ("y1", &fmt_coord(y)),
                ("x2", &fmt_coord(plot_right)),
                ("y2", &fmt_coord(y)),
                ("stroke", if tick == 0.0 { AXIS } else { GRIDLINE }),
                ("stroke-width", "1"),
            ],
        );
        svg.text(
            MARGIN_LEFT - 8.0,
            y + 4.0,
            &fmt_value(tick),
            &[
                ("fill", INK_MUTED),
                ("font-size", "11"),
                ("text-anchor", "end"),
            ],
        );
    }
    let mid = (plot_top + plot_bottom) / 2.0;
    let transform = format!("rotate(-90 14 {})", fmt_coord(mid));
    svg.text(
        14.0,
        mid,
        y_label,
        &[
            ("fill", INK_SECONDARY),
            ("font-size", "12"),
            ("text-anchor", "middle"),
            ("transform", &transform),
        ],
    );
}

/// Draws the dashed reference line (the figures' "unprotected = 1.0" mark).
fn draw_reference_line(svg: &mut SvgWriter, scale: &LinearScale, at: f64, plot_right: f64) {
    if !at.is_finite() {
        return;
    }
    let y = scale.pos(at);
    svg.element(
        "line",
        &[
            ("x1", &fmt_coord(MARGIN_LEFT)),
            ("y1", &fmt_coord(y)),
            ("x2", &fmt_coord(plot_right)),
            ("y2", &fmt_coord(y)),
            ("stroke", INK_MUTED),
            ("stroke-width", "1"),
            ("stroke-dasharray", "5 4"),
        ],
    );
}

/// How a sweep-chart series is drawn: recessive gray, or the emphasised
/// palette line with markers and tooltips.
#[derive(Debug, Clone, Copy)]
enum LineStyle {
    Background,
    Highlight,
}

/// Rotated category label under the plot.
fn draw_category_label(svg: &mut SvgWriter, x: f64, y: f64, label: &str) {
    let transform = format!("rotate(-38 {} {})", fmt_coord(x), fmt_coord(y));
    svg.text(
        x,
        y,
        label,
        &[
            ("fill", INK_MUTED),
            ("font-size", "11"),
            ("text-anchor", "end"),
            ("transform", &transform),
        ],
    );
}

/// Bottom margin that leaves room for rotated category labels plus the
/// x-axis title.
fn bottom_margin(categories: &[String]) -> f64 {
    let longest = categories
        .iter()
        .map(|c| text_advance(c))
        .fold(0.0, f64::max);
    // sin(38°) ≈ 0.62 of the label length extends below the axis.
    (longest * 0.62 + 18.0).clamp(36.0, 120.0) + 22.0
}

/// A grouped (clustered) bar chart: one group of bars per category, one bar
/// per series — the shape of the paper's slowdown figures (3, 4, 8, 9) and
/// the rate figure (7, with a single series).
///
/// # Examples
///
/// ```
/// use reportgen::chart::{GroupedBarChart, Series};
///
/// let svg = GroupedBarChart {
///     categories: vec!["mcf".into(), "lbm".into(), "geomean".into()],
///     series: vec![
///         Series::new("muontrap", [1.02, 1.05, 1.03]),
///         Series::new("invisispec", [1.18, 1.22, 1.20]),
///     ],
///     x_label: "workload".into(),
///     y_label: "normalised execution time".into(),
///     reference_line: Some(1.0),
/// }
/// .render();
/// assert!(svg.starts_with("<svg ") && svg.ends_with("</svg>"));
/// assert!(svg.contains("muontrap") && svg.contains("geomean"));
/// ```
#[derive(Debug, Clone)]
pub struct GroupedBarChart {
    /// Category (x-group) labels.
    pub categories: Vec<String>,
    /// One bar per series within each group, colored in palette order.
    pub series: Vec<Series>,
    /// X-axis title.
    pub x_label: String,
    /// Value-axis title.
    pub y_label: String,
    /// Dashed horizontal marker, e.g. the normalised-time baseline at 1.0.
    pub reference_line: Option<f64>,
}

impl GroupedBarChart {
    /// Renders the chart as a self-contained `<svg>` fragment.
    pub fn render(&self) -> String {
        let ncat = self.categories.len().max(1);
        let nser = self.series.len().max(1);
        // 2 px surface gap between adjacent bars, wider gutter between
        // groups; the SVG widens with the grid and scales down in the page.
        let bar_w: f64 = if nser >= 5 { 7.0 } else { 10.0 };
        let bar_gap = 2.0;
        let group_pad = 12.0;
        let bars_w = nser as f64 * (bar_w + bar_gap) - bar_gap;
        let width = (MARGIN_LEFT + MARGIN_RIGHT + ncat as f64 * (bars_w + group_pad)).max(420.0);
        // Spread the groups across whatever plot width the max() granted, so
        // small grids don't huddle at the left of a 420 px minimum.
        let group_w = (width - MARGIN_LEFT - MARGIN_RIGHT) / ncat as f64;

        let legend: Vec<(&str, String)> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| (series_color(i), s.name.clone()))
            .collect();
        let (legend_pos, legend_h) = legend_layout(&legend, width);
        let plot_top = legend_h + 12.0;
        let plot_bottom = plot_top + PLOT_HEIGHT;
        let height = plot_bottom + bottom_margin(&self.categories);
        let plot_right = width - MARGIN_RIGHT;

        let max = finite_max(self.series.iter(), self.reference_line);
        let scale = LinearScale::new(max * 1.05, plot_bottom, plot_top);

        let mut svg = SvgWriter::new(width, height);
        svg.open("g", &[("style", FONT)]);
        draw_legend(&mut svg, &legend, &legend_pos);
        draw_value_axis(
            &mut svg,
            &scale,
            &self.y_label,
            plot_top,
            plot_bottom,
            plot_right,
        );
        if let Some(at) = self.reference_line {
            draw_reference_line(&mut svg, &scale, at, plot_right);
        }

        for (c, category) in self.categories.iter().enumerate() {
            let group_x = MARGIN_LEFT + c as f64 * group_w;
            let bars_x = group_x + (group_w - bars_w) / 2.0;
            draw_category_label(
                &mut svg,
                group_x + group_w / 2.0,
                plot_bottom + 14.0,
                category,
            );
            for (s, series) in self.series.iter().enumerate() {
                let value = series.values.get(c).copied().unwrap_or(f64::NAN);
                if !value.is_finite() || value < 0.0 {
                    continue;
                }
                let x = bars_x + s as f64 * (bar_w + bar_gap);
                let top = scale.pos(value);
                let h = plot_bottom - top;
                svg.open("g", &[]);
                svg.title(&format!(
                    "{category} · {}: {}",
                    series.name,
                    fmt_value(value)
                ));
                svg.element(
                    "path",
                    &[
                        ("d", &bar_path(x, top, bar_w, h)),
                        ("fill", series_color(s)),
                    ],
                );
                svg.close("g");
            }
        }

        svg.text(
            (MARGIN_LEFT + plot_right) / 2.0,
            height - 8.0,
            &self.x_label,
            &[
                ("fill", INK_SECONDARY),
                ("font-size", "12"),
                ("text-anchor", "middle"),
            ],
        );
        svg.close("g");
        svg.finish()
    }
}

/// A bar anchored on the baseline with a rounded data end (top corners
/// only — rounding the baseline corners would detach the bar from zero).
fn bar_path(x: f64, y: f64, w: f64, h: f64) -> String {
    let r = 2.5f64.min(h / 2.0).min(w / 2.0).max(0.0);
    let x1 = x + w;
    format!(
        "M{x0},{yb}V{yr}Q{x0},{yt} {xr0},{yt}H{xr1}Q{x1},{yt} {x1},{yr}V{yb}Z",
        x0 = fmt_coord(x),
        x1 = fmt_coord(x1),
        xr0 = fmt_coord(x + r),
        xr1 = fmt_coord(x1 - r),
        yb = fmt_coord(y + h),
        yr = fmt_coord(y + r),
        yt = fmt_coord(y),
    )
}

/// A sweep line chart: the x axis is an ordered set of sweep points
/// (filter-cache sizes, associativities), every per-workload series renders
/// as a recessive gray line, and one highlighted series — the geometric
/// mean — carries the palette color, markers and a direct label. Keeping a
/// single emphasised series means a sweep over 13 workloads never needs 13
/// hues (categorical palettes don't stretch that far honestly).
///
/// # Examples
///
/// ```
/// use reportgen::chart::{Series, SweepLineChart};
///
/// let svg = SweepLineChart {
///     points: vec!["64 B".into(), "128 B".into(), "256 B".into()],
///     background: vec![
///         Series::new("streamcluster", [1.4, 1.2, 1.1]),
///         Series::new("canneal", [1.3, 1.15, 1.05]),
///     ],
///     highlight: Series::new("geomean", [1.35, 1.17, 1.08]),
///     x_label: "data filter-cache size".into(),
///     y_label: "normalised execution time".into(),
///     reference_line: Some(1.0),
/// }
/// .render();
/// assert!(svg.starts_with("<svg ") && svg.ends_with("</svg>"));
/// assert!(svg.contains("geomean") && svg.contains("128 B"));
/// ```
#[derive(Debug, Clone)]
pub struct SweepLineChart {
    /// Ordered sweep-point labels along the x axis.
    pub points: Vec<String>,
    /// De-emphasised per-workload series (gray, behind the highlight).
    pub background: Vec<Series>,
    /// The emphasised series (markers, color, direct label).
    pub highlight: Series,
    /// X-axis title.
    pub x_label: String,
    /// Value-axis title.
    pub y_label: String,
    /// Dashed horizontal marker, e.g. the normalised-time baseline at 1.0.
    pub reference_line: Option<f64>,
}

impl SweepLineChart {
    /// Renders the chart as a self-contained `<svg>` fragment.
    pub fn render(&self) -> String {
        let npoints = self.points.len().max(1);
        let width = (MARGIN_LEFT + MARGIN_RIGHT + 60.0 + npoints as f64 * 78.0).max(420.0);
        let legend: Vec<(&str, String)> = vec![
            (series_color(0), self.highlight.name.clone()),
            (SPAGHETTI, "per-workload".to_string()),
        ];
        let (legend_pos, legend_h) = legend_layout(&legend, width);
        let plot_top = legend_h + 12.0;
        let plot_bottom = plot_top + PLOT_HEIGHT;
        let height = plot_bottom + bottom_margin(&self.points);
        let plot_right = width - MARGIN_RIGHT;

        let max = finite_max(
            self.background
                .iter()
                .chain(std::iter::once(&self.highlight)),
            self.reference_line,
        );
        let scale = LinearScale::new(max * 1.05, plot_bottom, plot_top);
        let x_of = |i: usize| {
            MARGIN_LEFT
                + 30.0
                + if npoints == 1 {
                    0.0
                } else {
                    i as f64 * (plot_right - MARGIN_LEFT - 60.0) / (npoints - 1) as f64
                }
        };

        let mut svg = SvgWriter::new(width, height);
        svg.open("g", &[("style", FONT)]);
        draw_legend(&mut svg, &legend, &legend_pos);
        draw_value_axis(
            &mut svg,
            &scale,
            &self.y_label,
            plot_top,
            plot_bottom,
            plot_right,
        );
        if let Some(at) = self.reference_line {
            draw_reference_line(&mut svg, &scale, at, plot_right);
        }
        for (i, point) in self.points.iter().enumerate() {
            draw_category_label(&mut svg, x_of(i), plot_bottom + 14.0, point);
        }

        for series in &self.background {
            self.draw_line(&mut svg, series, &scale, &x_of, LineStyle::Background);
        }
        self.draw_line(
            &mut svg,
            &self.highlight,
            &scale,
            &x_of,
            LineStyle::Highlight,
        );

        // Direct label on the highlight's last finite point.
        if let Some((i, &v)) = self
            .highlight
            .values
            .iter()
            .enumerate()
            .rev()
            .find(|(_, v)| v.is_finite())
        {
            svg.text(
                x_of(i) + 8.0,
                scale.pos(v) - 8.0,
                &self.highlight.name,
                &[("fill", INK_PRIMARY), ("font-size", "12")],
            );
        }

        svg.text(
            (MARGIN_LEFT + plot_right) / 2.0,
            height - 8.0,
            &self.x_label,
            &[
                ("fill", INK_SECONDARY),
                ("font-size", "12"),
                ("text-anchor", "middle"),
            ],
        );
        svg.close("g");
        svg.finish()
    }

    /// Draws one series as polyline segments (broken at non-finite points),
    /// with ringed markers and per-point tooltips on the highlight.
    fn draw_line(
        &self,
        svg: &mut SvgWriter,
        series: &Series,
        scale: &LinearScale,
        x_of: &impl Fn(usize) -> f64,
        style: LineStyle,
    ) {
        let (color, stroke_width, emphasised) = match style {
            LineStyle::Background => (SPAGHETTI, 1.2, false),
            LineStyle::Highlight => (series_color(0), 2.0, true),
        };
        let mut segment: Vec<String> = Vec::new();
        let mut segments: Vec<String> = Vec::new();
        for (i, &v) in series.values.iter().enumerate() {
            if v.is_finite() {
                segment.push(format!(
                    "{},{}",
                    fmt_coord(x_of(i)),
                    fmt_coord(scale.pos(v))
                ));
            } else if !segment.is_empty() {
                segments.push(segment.join(" "));
                segment.clear();
            }
        }
        if !segment.is_empty() {
            segments.push(segment.join(" "));
        }
        svg.open("g", &[]);
        svg.title(&series.name);
        for points in &segments {
            svg.element(
                "polyline",
                &[
                    ("points", points),
                    ("fill", "none"),
                    ("stroke", color),
                    ("stroke-width", &fmt_coord(stroke_width)),
                    ("stroke-linejoin", "round"),
                ],
            );
        }
        if emphasised {
            for (i, &v) in series.values.iter().enumerate() {
                if !v.is_finite() {
                    continue;
                }
                svg.open("g", &[]);
                svg.title(&format!(
                    "{} · {}: {}",
                    self.points.get(i).map_or("", |p| p.as_str()),
                    series.name,
                    fmt_value(v)
                ));
                svg.element(
                    "circle",
                    &[
                        ("cx", &fmt_coord(x_of(i))),
                        ("cy", &fmt_coord(scale.pos(v))),
                        ("r", "4"),
                        ("fill", color),
                        ("stroke", "#fcfcfb"),
                        ("stroke-width", "2"),
                    ],
                );
                svg.close("g");
            }
        }
        svg.close("g");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bars() -> GroupedBarChart {
        GroupedBarChart {
            categories: vec!["a".into(), "b".into()],
            series: vec![Series::new("s1", [1.0, 2.0]), Series::new("s2", [0.5, 1.5])],
            x_label: "x".into(),
            y_label: "y".into(),
            reference_line: Some(1.0),
        }
    }

    #[test]
    fn bar_chart_draws_one_mark_per_finite_value() {
        let svg = bars().render();
        assert_eq!(svg.matches("<path ").count(), 4);
        assert!(svg.contains("stroke-dasharray"), "reference line present");
        assert!(svg.contains("a · s1: 1"), "tooltip present");
    }

    #[test]
    fn nonfinite_and_negative_bars_are_skipped_not_corrupted() {
        let mut chart = bars();
        chart.series[0].values[1] = f64::NAN;
        chart.series[1].values[0] = -3.0;
        let svg = chart.render();
        assert_eq!(svg.matches("<path ").count(), 2);
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn single_series_bar_chart_has_no_legend_box() {
        let mut chart = bars();
        chart.series.truncate(1);
        let svg = chart.render();
        assert_eq!(svg.matches("<rect ").count(), 0, "no legend swatches");
    }

    #[test]
    fn labels_are_escaped_into_entities() {
        let mut chart = bars();
        chart.categories[0] = "<mcf> & 'friends'".into();
        let svg = chart.render();
        assert!(!svg.contains("<mcf>"));
        assert!(svg.contains("&lt;mcf&gt; &amp; &#39;friends&#39;"));
    }

    #[test]
    fn sweep_chart_breaks_lines_at_nan_points() {
        let chart = SweepLineChart {
            points: vec!["1".into(), "2".into(), "3".into(), "4".into()],
            background: vec![Series::new("w", [1.0, f64::NAN, 1.2, 1.1])],
            highlight: Series::new("geomean", [1.1, 1.05, f64::NAN, 1.0]),
            x_label: "x".into(),
            y_label: "y".into(),
            reference_line: None,
        };
        let svg = chart.render();
        // Background splits into two polylines, highlight into two more.
        assert_eq!(svg.matches("<polyline ").count(), 4);
        // Markers only on the highlight's three finite points.
        assert_eq!(svg.matches("<circle ").count(), 3);
    }

    #[test]
    fn charts_widen_with_the_grid() {
        let narrow = bars().render();
        let mut wide = bars();
        wide.categories = (0..30).map(|i| format!("w{i}")).collect();
        for s in &mut wide.series {
            s.values = vec![1.0; 30];
        }
        let wide = wide.render();
        let width = |svg: &str| {
            let start = svg.find("width=\"").unwrap() + 7;
            svg[start..svg[start..].find('"').unwrap() + start]
                .parse::<f64>()
                .unwrap()
        };
        assert!(width(&wide) > width(&narrow));
    }
}
