//! The HTML assembler: folds rendered figures and tables into one
//! self-contained `report.html`.
//!
//! Self-contained means *zero external assets*: inline SVG, one inline
//! `<style>` block, the system font stack, no scripts, no links to anywhere
//! — the file renders identically from a CI artifact, an email attachment or
//! `file://`. CI asserts the strong form of this property: the output
//! contains nothing URL-shaped at all.

use crate::report::Provenance;
use crate::svg::escape;
use crate::table::SummaryTable;

/// One rendered figure section of the document.
#[derive(Debug, Clone)]
pub struct ReportFigure {
    /// Anchor id (sanitised to `[a-z0-9-]` on render).
    pub id: String,
    /// Section heading (the figure's title).
    pub title: String,
    /// Paper cross-reference, e.g. `"§6.1, Figure 3"`.
    pub paper_section: String,
    /// Reader-facing caption under the chart.
    pub caption: String,
    /// The rendered `<svg>` fragment (trusted markup from this crate's
    /// chart renderers; everything else is escaped).
    pub svg: String,
    /// Run provenance line, when known.
    pub provenance: Option<Provenance>,
}

/// A titled data table section (the domain-switch summary).
#[derive(Debug, Clone)]
struct TableSection {
    id: String,
    title: String,
    caption: String,
    table: SummaryTable,
}

/// The document builder.
///
/// # Examples
///
/// ```
/// use reportgen::html::{HtmlDocument, ReportFigure};
///
/// let mut doc = HtmlDocument::new("MuonTrap evaluation");
/// doc.intro("Regenerated from the result store.");
/// doc.figure(ReportFigure {
///     id: "fig3".into(),
///     title: "Figure 3".into(),
///     paper_section: "§6.1, Figure 3".into(),
///     caption: "SPEC-like slowdowns.".into(),
///     svg: "<svg viewBox=\"0 0 10 10\" width=\"10\" height=\"10\" role=\"img\"></svg>".into(),
///     provenance: None,
/// });
/// let html = doc.render();
/// assert!(html.starts_with("<!doctype html>"));
/// assert!(html.contains("<svg ") && html.contains("Figure 3"));
/// assert!(!html.contains("http"), "self-contained: nothing URL-shaped");
/// ```
#[derive(Debug, Clone)]
pub struct HtmlDocument {
    title: String,
    intro: Vec<String>,
    sections: Vec<Section>,
    refresh_seconds: Option<u32>,
}

#[derive(Debug, Clone)]
enum Section {
    Figure(ReportFigure),
    Table(TableSection),
}

impl HtmlDocument {
    /// A document with the given page title.
    pub fn new(title: impl Into<String>) -> HtmlDocument {
        HtmlDocument {
            title: title.into(),
            intro: Vec::new(),
            sections: Vec::new(),
            refresh_seconds: None,
        }
    }

    /// Makes the rendered page reload itself every `seconds` seconds via a
    /// `<meta>` refresh — the one HTML auto-reload mechanism that needs no
    /// script and names no URL, which is how `merge --html-live` stays
    /// inside the report's self-containedness rules while a fleet runs.
    ///
    /// The attribute name is emitted as `HTTP-EQUIV` (uppercase). HTML
    /// attribute names are case-insensitive, but this report's
    /// self-containedness checks (tests and CI alike) reject any page
    /// containing the lowercase substring `http` — the simplest possible
    /// tripwire for external references — and the uppercase spelling keeps
    /// the refresh tag from ever reading as one.
    pub fn meta_refresh(&mut self, seconds: u32) {
        self.refresh_seconds = Some(seconds);
    }

    /// Appends an introductory paragraph (escaped).
    pub fn intro(&mut self, paragraph: impl Into<String>) {
        self.intro.push(paragraph.into());
    }

    /// Appends a figure section.
    pub fn figure(&mut self, figure: ReportFigure) {
        self.sections.push(Section::Figure(figure));
    }

    /// Appends a table section.
    pub fn table(
        &mut self,
        id: impl Into<String>,
        title: impl Into<String>,
        caption: impl Into<String>,
        table: SummaryTable,
    ) {
        self.sections.push(Section::Table(TableSection {
            id: id.into(),
            title: title.into(),
            caption: caption.into(),
            table,
        }));
    }

    /// Number of sections added so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// True when no sections have been added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Renders the complete, self-contained HTML document.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64 * 1024);
        out.push_str("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
        if let Some(seconds) = self.refresh_seconds {
            out.push_str(&format!(
                "<meta HTTP-EQUIV=\"refresh\" content=\"{seconds}\">\n"
            ));
        }
        out.push_str(&format!("<title>{}</title>\n", escape(&self.title)));
        out.push_str("<style>\n");
        out.push_str(STYLE);
        out.push_str("</style>\n</head>\n<body>\n");
        out.push_str(&format!("<h1>{}</h1>\n", escape(&self.title)));
        for paragraph in &self.intro {
            out.push_str(&format!("<p class=\"intro\">{}</p>\n", escape(paragraph)));
        }
        if self.sections.len() > 1 {
            out.push_str("<nav><ul>\n");
            for section in &self.sections {
                let (id, title) = match section {
                    Section::Figure(f) => (&f.id, &f.title),
                    Section::Table(t) => (&t.id, &t.title),
                };
                out.push_str(&format!(
                    "<li><a href=\"#{}\">{}</a></li>\n",
                    anchor(id),
                    escape(title)
                ));
            }
            out.push_str("</ul></nav>\n");
        }
        for section in &self.sections {
            match section {
                Section::Figure(figure) => self.render_figure(&mut out, figure),
                Section::Table(table) => self.render_table(&mut out, table),
            }
        }
        out.push_str("</body>\n</html>\n");
        out
    }

    fn render_figure(&self, out: &mut String, figure: &ReportFigure) {
        out.push_str(&format!(
            "<section id=\"{}\" class=\"card\">\n<h2>{}</h2>\n<p class=\"paper-ref\">{}</p>\n",
            anchor(&figure.id),
            escape(&figure.title),
            escape(&figure.paper_section),
        ));
        out.push_str("<figure>\n");
        out.push_str(&figure.svg);
        out.push_str(&format!(
            "\n<figcaption>{}</figcaption>\n</figure>\n",
            escape(&figure.caption)
        ));
        if let Some(provenance) = &figure.provenance {
            out.push_str(&format!(
                "<p class=\"provenance\">{}</p>\n",
                escape(&provenance.summary())
            ));
        }
        out.push_str("</section>\n");
    }

    fn render_table(&self, out: &mut String, section: &TableSection) {
        out.push_str(&format!(
            "<section id=\"{}\" class=\"card\">\n<h2>{}</h2>\n",
            anchor(&section.id),
            escape(&section.title),
        ));
        out.push_str(&section.table.render());
        out.push_str(&format!(
            "\n<p class=\"caption\">{}</p>\n</section>\n",
            escape(&section.caption)
        ));
    }
}

/// Sanitises an anchor id to `[a-z0-9-]` so hand-written ids can never break
/// out of the attribute.
fn anchor(id: &str) -> String {
    let cleaned: String = id
        .chars()
        .map(|c| match c.to_ascii_lowercase() {
            c @ ('a'..='z' | '0'..='9') => c,
            _ => '-',
        })
        .collect();
    if cleaned.is_empty() {
        "section".to_string()
    } else {
        cleaned
    }
}

/// The document stylesheet: system font stack, light surfaces, hairline
/// card borders, responsive inline SVG, tabular numerals in tables. No
/// imports, no webfonts — nothing that touches the network.
const STYLE: &str = "\
:root { color-scheme: light; }
body { font-family: system-ui, -apple-system, 'Segoe UI', sans-serif;
  background: #f9f9f7; color: #0b0b0b; margin: 0 auto; max-width: 76rem;
  padding: 1.5rem; line-height: 1.5; }
h1 { font-size: 1.5rem; }
h2 { font-size: 1.15rem; margin: 0 0 .25rem; }
p.intro { color: #52514e; max-width: 60rem; }
nav ul { list-style: none; padding: 0; display: flex; flex-wrap: wrap; gap: .25rem 1rem; }
nav a { color: #2a78d6; text-decoration: none; }
nav a:hover { text-decoration: underline; }
section.card { background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 1rem 1.25rem; margin: 1rem 0; }
p.paper-ref { color: #898781; font-size: .85rem; margin: 0 0 .5rem; }
figure { margin: 0; overflow-x: auto; }
figure svg { max-width: 100%; height: auto; }
figcaption, p.caption { color: #52514e; font-size: .9rem; max-width: 60rem; }
p.provenance { color: #898781; font-size: .8rem; border-top: 1px solid #e1e0d9;
  padding-top: .5rem; margin-bottom: 0; font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; font-size: .9rem; }
th, td { border-bottom: 1px solid #e1e0d9; padding: .3rem .75rem; text-align: left; }
th { color: #52514e; font-weight: 600; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tfoot td { border-top: 2px solid #52514e; border-bottom: none; font-weight: 600; }
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_sanitised() {
        assert_eq!(anchor("fig3"), "fig3");
        assert_eq!(anchor("a b\"><script>"), "a-b---script-");
        assert_eq!(anchor(""), "section");
    }

    #[test]
    fn document_contains_nothing_url_shaped() {
        let mut doc = HtmlDocument::new("t");
        doc.intro("intro");
        let mut table = SummaryTable::new(["h"]);
        table.row([("v", true)]);
        doc.table("tbl", "Table", "caption", table);
        let html = doc.render();
        assert!(!html.contains("http"), "no protocol anywhere: {html}");
        assert!(!html.contains("<script"));
        assert!(!html.contains("<link"));
        assert!(!html.contains("@import"));
    }

    #[test]
    fn meta_refresh_passes_the_self_containedness_tripwires() {
        let mut doc = HtmlDocument::new("live");
        doc.meta_refresh(2);
        let html = doc.render();
        assert!(
            html.contains("<meta HTTP-EQUIV=\"refresh\" content=\"2\">"),
            "the refresh tag must be present: {html}"
        );
        // The whole point of the uppercase spelling: the page still clears
        // every needle the no-external-refs gates grep for.
        assert!(!html.contains("http"), "lowercase tripwire must stay clean");
        assert!(!html.contains("<script"));
        assert!(!html.contains("<link"));
        assert!(!html.contains("@import"));
    }

    #[test]
    fn documents_without_refresh_render_no_meta_refresh() {
        let html = HtmlDocument::new("t").render();
        assert!(!html.contains("refresh"));
        assert!(!html.contains("HTTP-EQUIV"));
    }

    #[test]
    fn single_section_documents_skip_the_nav() {
        let mut doc = HtmlDocument::new("t");
        assert!(doc.is_empty());
        doc.table("only", "Only", "c", SummaryTable::new(["h"]));
        assert_eq!(doc.len(), 1);
        let html = doc.render();
        assert!(!html.contains("<nav>"));
    }

    #[test]
    fn titles_and_captions_are_escaped() {
        let mut doc = HtmlDocument::new("<title> & co");
        doc.figure(ReportFigure {
            id: "f".into(),
            title: "a < b".into(),
            paper_section: "§ & co".into(),
            caption: "c > d".into(),
            svg: String::new(),
            provenance: None,
        });
        let html = doc.render();
        assert!(html.contains("&lt;title&gt; &amp; co"));
        assert!(html.contains("a &lt; b"));
        assert!(html.contains("c &gt; d"));
    }
}
