//! Dependency-free chart rendering and the self-contained HTML evaluation
//! report.
//!
//! The build is offline (no plotters, no resvg, no registry access at all),
//! so this crate generates the evaluation's artefacts from first principles:
//!
//! * [`svg`] — the primitive layer: escaping, deterministic number
//!   formatting, linear scales with nice ticks, and a balanced-by-construction
//!   element writer ([`svg::SvgWriter`]);
//! * [`chart`] — the evaluation's chart shapes: grouped bar charts
//!   ([`chart::GroupedBarChart`], the slowdown figures) and sweep line charts
//!   ([`chart::SweepLineChart`], the filter-cache geometry sweeps);
//! * [`table`] — the HTML summary table ([`table::SummaryTable`], the
//!   domain-switch suite);
//! * [`report`] — per-figure metadata ([`report::FigureMeta`]), the
//!   [`RunReport`](simsys::session::RunReport)-to-chart conversions
//!   ([`report::figure_chart`]) and run provenance ([`report::Provenance`]);
//! * [`html`] — the assembler folding every figure into one self-contained
//!   `report.html` ([`html::HtmlDocument`]): inline SVG, inline CSS, system
//!   fonts, no scripts, nothing URL-shaped.
//!
//! The figure ↔ metadata registry itself lives in the `bench` crate next to
//! the figure definitions; this crate stays a leaf that knows how to draw,
//! not what the paper's figures are.
//!
//! Rendering is deterministic — same report in, same bytes out — which is
//! what the golden-snapshot tests pin, and every string that originates in
//! data (workload names, column labels, captions) is escaped on the way into
//! markup.
//!
//! # Example
//!
//! ```
//! use reportgen::chart::{GroupedBarChart, Series};
//! use reportgen::html::{HtmlDocument, ReportFigure};
//!
//! let svg = GroupedBarChart {
//!     categories: vec!["mcf".into(), "geomean".into()],
//!     series: vec![Series::new("muontrap", [1.05, 1.03])],
//!     x_label: "workload".into(),
//!     y_label: "normalised execution time".into(),
//!     reference_line: Some(1.0),
//! }
//! .render();
//!
//! let mut doc = HtmlDocument::new("demo");
//! doc.figure(ReportFigure {
//!     id: "demo".into(),
//!     title: "Demo".into(),
//!     paper_section: "§6".into(),
//!     caption: "One bar per workload.".into(),
//!     svg,
//!     provenance: None,
//! });
//! let html = doc.render();
//! assert!(html.contains("<svg ") && !html.contains("http"));
//! ```

#![forbid(unsafe_code)]

pub mod chart;
pub mod html;
pub mod report;
pub mod svg;
pub mod table;

pub use chart::{GroupedBarChart, Series, SweepLineChart};
pub use html::{HtmlDocument, ReportFigure};
pub use report::{figure_chart, ChartKind, FigureMeta, Provenance};
pub use table::SummaryTable;
