//! The SVG primitive layer: escaping, number formatting, linear scales with
//! nice tick layout, and a small element writer the chart types are built on.
//!
//! Everything here is deterministic text generation — same inputs, same bytes
//! — which is what lets the golden-snapshot tests pin whole charts. Nothing
//! in this module knows about reports or figures; it only knows coordinates.

use std::fmt::Write as _;

/// Escapes text for use in SVG/HTML content or attribute values.
///
/// The five XML special characters are replaced by entities; everything else
/// passes through untouched. Chart callers run *every* user-influenced string
/// (workload names, column labels, captions) through this, so a workload
/// named `<script>` renders as text rather than markup.
///
/// # Examples
///
/// ```
/// assert_eq!(reportgen::svg::escape("a<b & 'c'"), "a&lt;b &amp; &#39;c&#39;");
/// assert_eq!(reportgen::svg::escape("plain"), "plain");
/// ```
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a coordinate or length: two decimal places with trailing zeros
/// (and a trailing `.`) trimmed, so `12.00` renders as `12` and `3.50` as
/// `3.5`. Not-finite values (which the chart layers filter out of geometry
/// before reaching here) render as `0` rather than producing invalid SVG.
///
/// # Examples
///
/// ```
/// assert_eq!(reportgen::svg::fmt_coord(12.0), "12");
/// assert_eq!(reportgen::svg::fmt_coord(3.5), "3.5");
/// assert_eq!(reportgen::svg::fmt_coord(0.126), "0.13");
/// assert_eq!(reportgen::svg::fmt_coord(f64::NAN), "0");
/// ```
pub fn fmt_coord(value: f64) -> String {
    if !value.is_finite() {
        return "0".to_string();
    }
    let mut s = format!("{value:.2}");
    while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
        s.pop();
    }
    if s == "-0" {
        s = "0".to_string();
    }
    s
}

/// Formats a data value for tick and tooltip labels: up to three significant
/// decimal places, trimmed like [`fmt_coord`].
pub fn fmt_value(value: f64) -> String {
    if !value.is_finite() {
        return "n/a".to_string();
    }
    let mut s = format!("{value:.3}");
    while s.contains('.') && (s.ends_with('0') || s.ends_with('.')) {
        s.pop();
    }
    if s == "-0" {
        s = "0".to_string();
    }
    s
}

/// A linear mapping from a data domain onto a pixel range.
///
/// The chart types always anchor the domain at zero (the figures are
/// magnitude comparisons; truncated baselines are the classic way to lie
/// with a bar chart), so the constructor takes only the data maximum and
/// clamps degenerate inputs to a usable domain.
///
/// # Examples
///
/// ```
/// use reportgen::svg::LinearScale;
///
/// // Map 0..=2.0 onto the 100 px of y = 300 down to y = 100 (SVG y grows
/// // downward, so the range is given high-to-low).
/// let y = LinearScale::new(2.0, 300.0, 100.0);
/// assert_eq!(y.pos(0.0), 300.0);
/// assert_eq!(y.pos(1.0), 200.0);
/// assert_eq!(y.pos(2.0), 100.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LinearScale {
    max: f64,
    range_start: f64,
    range_end: f64,
}

impl LinearScale {
    /// A scale over the domain `0..=max` mapped onto
    /// `range_start..=range_end`. A non-finite or non-positive `max` becomes
    /// `1.0`, so callers never divide by zero on empty or degenerate data.
    pub fn new(max: f64, range_start: f64, range_end: f64) -> LinearScale {
        let max = if max.is_finite() && max > 0.0 {
            max
        } else {
            1.0
        };
        LinearScale {
            max,
            range_start,
            range_end,
        }
    }

    /// The domain maximum actually in force (after degenerate-input clamping).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The pixel position of `value`. Values outside the domain extrapolate
    /// linearly; non-finite values land on the domain origin.
    pub fn pos(&self, value: f64) -> f64 {
        let value = if value.is_finite() { value } else { 0.0 };
        self.range_start + (value / self.max) * (self.range_end - self.range_start)
    }

    /// "Nice" tick values covering the domain: multiples of 1, 2, 2.5 or 5
    /// times a power of ten, chosen so at most `max_ticks` ticks (including
    /// zero) span `0..=max`.
    ///
    /// # Examples
    ///
    /// ```
    /// use reportgen::svg::LinearScale;
    ///
    /// let scale = LinearScale::new(2.0, 0.0, 100.0);
    /// assert_eq!(scale.ticks(6), vec![0.0, 0.5, 1.0, 1.5, 2.0]);
    /// ```
    pub fn ticks(&self, max_ticks: usize) -> Vec<f64> {
        let max_ticks = max_ticks.max(2);
        let raw_step = self.max / (max_ticks - 1) as f64;
        let magnitude = 10f64.powf(raw_step.log10().floor());
        let residual = raw_step / magnitude;
        let nice = if residual <= 1.0 {
            1.0
        } else if residual <= 2.0 {
            2.0
        } else if residual <= 2.5 {
            2.5
        } else if residual <= 5.0 {
            5.0
        } else {
            10.0
        };
        let step = nice * magnitude;
        let mut ticks = Vec::new();
        let mut value = 0.0;
        let mut i = 0u32;
        while value <= self.max * (1.0 + 1e-9) {
            ticks.push(value);
            i += 1;
            value = step * f64::from(i);
        }
        ticks
    }
}

/// An incremental SVG element writer: `open`/`close` keep the tag stack
/// balanced by construction, and every attribute value is escaped on the way
/// in. The chart types never concatenate raw markup.
///
/// # Examples
///
/// ```
/// use reportgen::svg::SvgWriter;
///
/// let mut svg = SvgWriter::new(100.0, 40.0);
/// svg.open("g", &[("class", "axis")]);
/// svg.element("line", &[("x1", "0"), ("y1", "0"), ("x2", "100"), ("y2", "0")]);
/// svg.text(8.0, 12.0, "label & more", &[("class", "muted")]);
/// svg.close("g");
/// let out = svg.finish();
/// assert!(out.starts_with("<svg "));
/// assert!(out.contains("label &amp; more"));
/// assert!(out.ends_with("</svg>"));
/// ```
#[derive(Debug)]
pub struct SvgWriter {
    out: String,
    stack: Vec<&'static str>,
}

impl SvgWriter {
    /// Starts an `<svg>` document of the given pixel size. The `viewBox`
    /// matches the size, so embedding pages can scale the chart down
    /// responsively (`max-width: 100%`) without clipping. Inline SVG in an
    /// HTML5 document needs no `xmlns`, and omitting it keeps the rendered
    /// report free of anything URL-shaped — a property CI asserts.
    pub fn new(width: f64, height: f64) -> SvgWriter {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "<svg viewBox=\"0 0 {w} {h}\" width=\"{w}\" height=\"{h}\" role=\"img\">",
            w = fmt_coord(width),
            h = fmt_coord(height),
        );
        SvgWriter {
            out,
            stack: Vec::new(),
        }
    }

    /// Opens a container element; it must later be closed with
    /// [`close`](Self::close) (and [`finish`](Self::finish) asserts the
    /// stack is empty, so an unbalanced chart fails loudly in tests rather
    /// than emitting broken markup).
    pub fn open(&mut self, tag: &'static str, attrs: &[(&str, &str)]) {
        self.write_tag(tag, attrs, false);
        self.stack.push(tag);
    }

    /// Closes the innermost open element, which must be `tag`.
    pub fn close(&mut self, tag: &'static str) {
        let top = self.stack.pop();
        assert_eq!(
            top,
            Some(tag),
            "unbalanced SVG: closing {tag:?} over {top:?}"
        );
        let _ = write!(self.out, "</{tag}>");
    }

    /// Writes a self-closing element.
    pub fn element(&mut self, tag: &str, attrs: &[(&str, &str)]) {
        self.write_tag(tag, attrs, true);
    }

    /// Writes a `<text>` element at `(x, y)` with escaped content.
    pub fn text(&mut self, x: f64, y: f64, content: &str, attrs: &[(&str, &str)]) {
        let x = fmt_coord(x);
        let y = fmt_coord(y);
        let mut all = vec![("x", x.as_str()), ("y", y.as_str())];
        all.extend_from_slice(attrs);
        self.write_tag("text", &all, false);
        self.out.push_str(&escape(content));
        let _ = write!(self.out, "</text>");
    }

    /// Writes a `<title>` child (the native, script-free SVG tooltip) with
    /// escaped content. Call between [`open`](Self::open) and
    /// [`close`](Self::close) of the mark it describes.
    pub fn title(&mut self, content: &str) {
        let _ = write!(self.out, "<title>{}</title>", escape(content));
    }

    /// Closes the document and returns the markup.
    ///
    /// # Panics
    /// Panics if any element opened with [`open`](Self::open) is still open.
    pub fn finish(mut self) -> String {
        assert!(
            self.stack.is_empty(),
            "unbalanced SVG: still-open elements {:?}",
            self.stack
        );
        self.out.push_str("</svg>");
        self.out
    }

    fn write_tag(&mut self, tag: &str, attrs: &[(&str, &str)], self_close: bool) {
        let _ = write!(self.out, "<{tag}");
        for (name, value) in attrs {
            let _ = write!(self.out, " {name}=\"{}\"", escape(value));
        }
        self.out.push_str(if self_close { "/>" } else { ">" });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_all_specials_and_passes_plain_text() {
        assert_eq!(escape("<>&\"'"), "&lt;&gt;&amp;&quot;&#39;");
        assert_eq!(escape("geomean ×1.04"), "geomean ×1.04");
    }

    #[test]
    fn coords_are_trimmed_and_tolerate_nan() {
        assert_eq!(fmt_coord(640.0), "640");
        assert_eq!(fmt_coord(0.1 + 0.2), "0.3");
        assert_eq!(fmt_coord(-0.0001), "0");
        assert_eq!(fmt_coord(f64::INFINITY), "0");
        assert_eq!(fmt_value(1.2345), "1.234");
        assert_eq!(fmt_value(f64::NAN), "n/a");
    }

    #[test]
    fn scale_clamps_degenerate_domains() {
        let s = LinearScale::new(f64::NAN, 0.0, 10.0);
        assert_eq!(s.max(), 1.0);
        assert_eq!(s.pos(1.0), 10.0);
        let z = LinearScale::new(0.0, 0.0, 10.0);
        assert_eq!(z.max(), 1.0);
        assert_eq!(z.pos(f64::NAN), 0.0);
    }

    #[test]
    fn ticks_cover_the_domain_with_nice_steps() {
        let s = LinearScale::new(1.37, 0.0, 100.0);
        let ticks = s.ticks(6);
        assert_eq!(ticks.first(), Some(&0.0));
        assert!(*ticks.last().unwrap() <= 1.37 + 1e-9);
        assert!(ticks.len() >= 3 && ticks.len() <= 7, "{ticks:?}");
        for pair in ticks.windows(2) {
            assert!(pair[1] > pair[0]);
        }
        // Large domains pick coarse steps, small domains fine ones.
        assert_eq!(LinearScale::new(100.0, 0.0, 1.0).ticks(6)[1], 20.0);
        assert_eq!(LinearScale::new(0.004, 0.0, 1.0).ticks(6)[1], 0.001);
    }

    #[test]
    #[should_panic(expected = "unbalanced SVG")]
    fn unbalanced_documents_panic() {
        let mut svg = SvgWriter::new(10.0, 10.0);
        svg.open("g", &[]);
        let _ = svg.finish();
    }
}
