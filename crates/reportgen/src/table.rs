//! The HTML summary table (the domain-switch suite's artefact in the
//! rendered report, where exact counter values matter more than bar heights).

use crate::svg::escape;

/// A header row plus data rows, rendered as a plain styled `<table>`. All
/// cell text is escaped; numeric-looking alignment is the embedding page's
/// stylesheet's job (cells carry a `num` class when flagged).
///
/// # Examples
///
/// ```
/// use reportgen::table::SummaryTable;
///
/// let mut table = SummaryTable::new(["kernel", "slowdown"]);
/// table.row([("syscall-storm", false), ("1.24", true)]);
/// let html = table.render();
/// assert!(html.starts_with("<table>") && html.ends_with("</table>"));
/// assert!(html.contains("<td class=\"num\">1.24</td>"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SummaryTable {
    headers: Vec<String>,
    rows: Vec<Vec<(String, bool)>>,
    footer: Option<Vec<(String, bool)>>,
}

impl SummaryTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> SummaryTable {
        SummaryTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            footer: None,
        }
    }

    /// Appends a data row of `(text, is_numeric)` cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = (S, bool)>) {
        self.rows
            .push(cells.into_iter().map(|(s, num)| (s.into(), num)).collect());
    }

    /// Sets the totals row, rendered in a `<tfoot>` after every data row
    /// (e.g. corpus-wide gadget counts under a per-program census). Calling
    /// it again replaces the previous footer.
    pub fn footer<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = (S, bool)>) {
        self.footer = Some(cells.into_iter().map(|(s, num)| (s.into(), num)).collect());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an HTML fragment.
    pub fn render(&self) -> String {
        let mut out = String::from("<table>");
        out.push_str("<thead><tr>");
        for h in &self.headers {
            out.push_str(&format!("<th>{}</th>", escape(h)));
        }
        out.push_str("</tr></thead><tbody>");
        for row in &self.rows {
            out.push_str("<tr>");
            for (cell, numeric) in row {
                if *numeric {
                    out.push_str(&format!("<td class=\"num\">{}</td>", escape(cell)));
                } else {
                    out.push_str(&format!("<td>{}</td>", escape(cell)));
                }
            }
            out.push_str("</tr>");
        }
        out.push_str("</tbody>");
        if let Some(footer) = &self.footer {
            out.push_str("<tfoot><tr>");
            for (cell, numeric) in footer {
                if *numeric {
                    out.push_str(&format!("<td class=\"num\">{}</td>", escape(cell)));
                } else {
                    out.push_str(&format!("<td>{}</td>", escape(cell)));
                }
            }
            out.push_str("</tr></tfoot>");
        }
        out.push_str("</table>");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_and_headers_are_escaped() {
        let mut table = SummaryTable::new(["<kernel>"]);
        table.row([("a & b", false)]);
        let html = table.render();
        assert!(html.contains("&lt;kernel&gt;"));
        assert!(html.contains("a &amp; b"));
        assert!(!html.contains("<kernel>"));
    }

    #[test]
    fn footer_renders_in_tfoot_after_every_row() {
        let mut table = SummaryTable::new(["program", "gadgets"]);
        table.row([("spectre-victim", false), ("1", true)]);
        table.footer([("total", false), ("1", true)]);
        let html = table.render();
        let tfoot = html.find("<tfoot>").expect("footer rendered");
        assert!(html.find("</tbody>").unwrap() < tfoot);
        assert!(html.contains("<tfoot><tr><td>total</td><td class=\"num\">1</td></tr></tfoot>"));
        assert!(html.ends_with("</tfoot></table>"));
    }

    #[test]
    fn empty_table_still_renders_balanced_markup() {
        let table = SummaryTable::new(["only header"]);
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        let html = table.render();
        assert!(html.starts_with("<table>") && html.ends_with("</table>"));
        assert!(html.contains("<tbody></tbody>"));
    }
}
