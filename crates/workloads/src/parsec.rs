//! The Parsec-like multi-threaded suite.
//!
//! The paper runs seven Parsec benchmarks with four threads in full-system
//! mode (figure 4). Each entry here pairs a Parsec benchmark name with a
//! shared-memory µISA kernel exercising the same sharing/synchronisation
//! pattern: embarrassingly parallel FP work (`blackscholes`, `swaptions`),
//! atomic work claiming (`canneal`, `ferret`), lock-protected neighbour
//! updates (`fluidanimate`), and shared read-mostly tables (`freqmine`,
//! `streamcluster`).

use crate::kernels::{data_parallel, lock_based, shared_read_mostly, work_queue, ParallelParams};
use crate::{Scale, Workload};

/// The benchmark names in the order figure 4 of the paper lists them.
pub const PARSEC_NAMES: [&str; 7] = [
    "blackscholes",
    "canneal",
    "ferret",
    "fluidanimate",
    "freqmine",
    "streamcluster",
    "swaptions",
];

/// Builds the synthetic kernel standing in for one Parsec benchmark with
/// `num_threads` threads.
pub fn parsec_workload(name: &str, scale: Scale, num_threads: usize) -> Option<Workload> {
    let num_threads = num_threads.max(1);
    let it = |base| scale.iterations(base);
    let el = |base| scale.elements(base);
    let params = |tid: usize, elements: u64, iterations: u64| ParallelParams {
        thread_id: tid as u64,
        num_threads: num_threads as u64,
        elements,
        iterations,
        seed: 71 + tid as u64,
    };

    let (programs, description): (Vec<_>, &str) = match name {
        "blackscholes" => (
            (0..num_threads)
                .map(|t| data_parallel(name, params(t, el(4096), it(6)), 6))
                .collect(),
            "option pricing: embarrassingly parallel FP over disjoint chunks",
        ),
        "canneal" => (
            (0..num_threads)
                .map(|t| work_queue(name, params(t, el(8192), it(900)), 6))
                .collect(),
            "simulated annealing: atomic move claiming over a large shared netlist",
        ),
        "ferret" => (
            (0..num_threads)
                .map(|t| work_queue(name, params(t, el(2048), it(1100)), 10))
                .collect(),
            "similarity search pipeline: work items claimed from a shared queue",
        ),
        "fluidanimate" => (
            (0..num_threads)
                .map(|t| lock_based(name, params(t, el(2048), it(700)), 4))
                .collect(),
            "fluid simulation: lock-protected neighbour-cell updates",
        ),
        "freqmine" => (
            (0..num_threads)
                .map(|t| shared_read_mostly(name, params(t, el(4096), it(1800)), 32))
                .collect(),
            "frequent itemset mining: shared tree, mostly reads, occasional updates",
        ),
        "streamcluster" => (
            (0..num_threads)
                .map(|t| shared_read_mostly(name, params(t, el(1024), it(2200)), 64))
                .collect(),
            "online clustering: all threads stream against shared cluster centres",
        ),
        "swaptions" => (
            (0..num_threads)
                .map(|t| data_parallel(name, params(t, el(2048), it(8)), 10))
                .collect(),
            "swaption pricing: independent FP Monte-Carlo per thread",
        ),
        _ => return None,
    };
    Some(Workload::parallel(name, programs, description))
}

/// The full Parsec-like suite at the given scale and thread count, in
/// figure-4 order.
pub fn parsec_suite(scale: Scale, num_threads: usize) -> Vec<Workload> {
    PARSEC_NAMES
        .iter()
        .map(|name| {
            parsec_workload(name, scale, num_threads).expect("every listed benchmark has a kernel")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_names_with_requested_threads() {
        let suite = parsec_suite(Scale::Tiny, 4);
        assert_eq!(suite.len(), PARSEC_NAMES.len());
        for (w, name) in suite.iter().zip(PARSEC_NAMES.iter()) {
            assert_eq!(w.name, *name);
            assert_eq!(w.num_threads(), 4);
            assert!(w.shared_memory);
        }
    }

    #[test]
    fn unknown_names_yield_none() {
        assert!(parsec_workload("raytrace", Scale::Tiny, 4).is_none());
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let w = parsec_workload("blackscholes", Scale::Tiny, 0).unwrap();
        assert_eq!(w.num_threads(), 1);
    }

    #[test]
    fn only_thread_zero_carries_shared_data_segments() {
        let w = parsec_workload("fluidanimate", Scale::Tiny, 4).unwrap();
        assert!(!w.thread_programs[0].data_segments().is_empty());
        for p in &w.thread_programs[1..] {
            assert!(p.data_segments().is_empty());
        }
    }
}
