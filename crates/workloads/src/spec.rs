//! The SPEC-CPU2006-like single-threaded suite.
//!
//! Each entry pairs a SPEC CPU2006 benchmark name with the synthetic kernel
//! whose memory and branch behaviour is closest to the characterisation the
//! MuonTrap paper relies on (streaming for `bwaves`/`lbm`, pointer chasing for
//! `mcf`/`omnetpp`, hard-to-predict branches for `gobmk`/`sjeng`, and so on).
//! EXPERIMENTS.md documents the mapping; absolute figures are not expected to
//! match the real benchmarks, only the relative behaviour across the defenses.

use crate::kernels::{
    branchy, compute, pointer_chase, random_access, stencil, stream, BranchyParams, ChaseParams,
    ComputeParams, RandomAccessParams, StencilParams, StreamParams,
};
use crate::{Scale, Workload};

/// The benchmark names in the order figure 3 of the paper lists them.
pub const SPEC_NAMES: [&str; 26] = [
    "astar",
    "bwaves",
    "bzip2",
    "cactusADM",
    "calculix",
    "gamess",
    "gcc",
    "GemsFDTD",
    "gobmk",
    "gromacs",
    "h264ref",
    "hmmer",
    "lbm",
    "leslie3d",
    "libquantum",
    "mcf",
    "milc",
    "namd",
    "omnetpp",
    "povray",
    "sjeng",
    "soplex",
    "tonto",
    "xalancbmk",
    "zeusmp",
    "sphinx3",
];

/// Builds the synthetic kernel standing in for one SPEC benchmark.
pub fn spec_workload(name: &str, scale: Scale) -> Option<Workload> {
    let it = |base| scale.iterations(base);
    let el = |base| scale.elements(base);
    let workload = match name {
        "astar" => Workload::single(
            name,
            pointer_chase(
                name,
                ChaseParams {
                    nodes: el(2048),
                    hops: it(6000),
                    seed: 11,
                },
            ),
            "graph path search: latency-bound pointer chasing",
        ),
        "bwaves" => Workload::single(
            name,
            stream(
                name,
                StreamParams {
                    elements: el(8192),
                    passes: it(3),
                    arrays: 3,
                    writes: true,
                    fp: true,
                },
            ),
            "large multi-array FP streaming, memory-bandwidth bound",
        ),
        "bzip2" => Workload::single(
            name,
            branchy(
                name,
                BranchyParams {
                    decisions: it(6000),
                    elements: el(1024),
                    seed: 23,
                },
            ),
            "byte-level compression: data-dependent branches",
        ),
        "cactusADM" => Workload::single(
            name,
            stencil(
                name,
                StencilParams {
                    dim: el(48),
                    sweeps: it(3),
                },
            ),
            "3D relativity stencil: strided grid sweeps with conflict misses",
        ),
        "calculix" => Workload::single(
            name,
            compute(
                name,
                ComputeParams {
                    iterations: it(12),
                    ops_per_element: 16,
                    elements: el(256),
                    fp: true,
                },
            ),
            "finite-element solve: FP compute bound",
        ),
        "gamess" => Workload::single(
            name,
            compute(
                name,
                ComputeParams {
                    iterations: it(14),
                    ops_per_element: 20,
                    elements: el(128),
                    fp: true,
                },
            ),
            "quantum chemistry: FP compute bound, tiny working set",
        ),
        "gcc" => Workload::single(
            name,
            random_access(
                name,
                RandomAccessParams {
                    elements: el(16384),
                    accesses: it(6000),
                    update: true,
                    seed: 31,
                },
            ),
            "compiler: irregular accesses over large in-memory IR",
        ),
        "GemsFDTD" => Workload::single(
            name,
            stream(
                name,
                StreamParams {
                    elements: el(8192),
                    passes: it(3),
                    arrays: 2,
                    writes: true,
                    fp: true,
                },
            ),
            "electromagnetics: FP streaming over large grids",
        ),
        "gobmk" => Workload::single(
            name,
            branchy(
                name,
                BranchyParams {
                    decisions: it(7000),
                    elements: el(512),
                    seed: 37,
                },
            ),
            "go engine: hard-to-predict branches",
        ),
        "gromacs" => Workload::single(
            name,
            compute(
                name,
                ComputeParams {
                    iterations: it(10),
                    ops_per_element: 12,
                    elements: el(512),
                    fp: true,
                },
            ),
            "molecular dynamics: FP compute with neighbour lists",
        ),
        "h264ref" => Workload::single(
            name,
            compute(
                name,
                ComputeParams {
                    iterations: it(10),
                    ops_per_element: 10,
                    elements: el(768),
                    fp: false,
                },
            ),
            "video encoding: integer compute over small blocks",
        ),
        "hmmer" => Workload::single(
            name,
            random_access(
                name,
                RandomAccessParams {
                    elements: el(2048),
                    accesses: it(7000),
                    update: false,
                    seed: 41,
                },
            ),
            "sequence search: table lookups with regular compute",
        ),
        "lbm" => Workload::single(
            name,
            stream(
                name,
                StreamParams {
                    elements: el(12288),
                    passes: it(3),
                    arrays: 2,
                    writes: true,
                    fp: true,
                },
            ),
            "lattice Boltzmann: streaming writes, prefetcher friendly",
        ),
        "leslie3d" => Workload::single(
            name,
            stencil(
                name,
                StencilParams {
                    dim: el(56),
                    sweeps: it(3),
                },
            ),
            "fluid dynamics: multi-array stencil streams",
        ),
        "libquantum" => Workload::single(
            name,
            stream(
                name,
                StreamParams {
                    elements: el(16384),
                    passes: it(3),
                    arrays: 1,
                    writes: true,
                    fp: false,
                },
            ),
            "quantum simulation: single huge-array streaming",
        ),
        "mcf" => Workload::single(
            name,
            pointer_chase(
                name,
                ChaseParams {
                    nodes: el(8192),
                    hops: it(6000),
                    seed: 43,
                },
            ),
            "network simplex: dependent pointer chasing, latency bound",
        ),
        "milc" => Workload::single(
            name,
            stream(
                name,
                StreamParams {
                    elements: el(6144),
                    passes: it(3),
                    arrays: 2,
                    writes: false,
                    fp: true,
                },
            ),
            "lattice QCD: FP streaming reads",
        ),
        "namd" => Workload::single(
            name,
            compute(
                name,
                ComputeParams {
                    iterations: it(12),
                    ops_per_element: 18,
                    elements: el(256),
                    fp: true,
                },
            ),
            "molecular dynamics: FP compute bound",
        ),
        "omnetpp" => Workload::single(
            name,
            pointer_chase(
                name,
                ChaseParams {
                    nodes: el(4096),
                    hops: it(5000),
                    seed: 47,
                },
            ),
            "discrete event simulation: pointer-heavy, poor locality",
        ),
        "povray" => Workload::single(
            name,
            compute(
                name,
                ComputeParams {
                    iterations: it(14),
                    ops_per_element: 14,
                    elements: el(128),
                    fp: true,
                },
            ),
            "ray tracing: FP compute, small working set",
        ),
        "sjeng" => Workload::single(
            name,
            branchy(
                name,
                BranchyParams {
                    decisions: it(6500),
                    elements: el(768),
                    seed: 53,
                },
            ),
            "chess engine: deep branchy search",
        ),
        "soplex" => Workload::single(
            name,
            random_access(
                name,
                RandomAccessParams {
                    elements: el(12288),
                    accesses: it(5500),
                    update: true,
                    seed: 59,
                },
            ),
            "linear programming: sparse matrix accesses",
        ),
        "tonto" => Workload::single(
            name,
            compute(
                name,
                ComputeParams {
                    iterations: it(12),
                    ops_per_element: 16,
                    elements: el(192),
                    fp: true,
                },
            ),
            "quantum crystallography: FP compute bound",
        ),
        "xalancbmk" => Workload::single(
            name,
            pointer_chase(
                name,
                ChaseParams {
                    nodes: el(3072),
                    hops: it(5500),
                    seed: 61,
                },
            ),
            "XSLT processing: pointer-heavy tree walking",
        ),
        "zeusmp" => Workload::single(
            name,
            stencil(
                name,
                StencilParams {
                    dim: el(64),
                    sweeps: it(3),
                },
            ),
            "astrophysics CFD: large strided stencil",
        ),
        "sphinx3" => Workload::single(
            name,
            random_access(
                name,
                RandomAccessParams {
                    elements: el(4096),
                    accesses: it(6000),
                    update: false,
                    seed: 67,
                },
            ),
            "speech recognition: scattered reads over acoustic model",
        ),
        _ => return None,
    };
    Some(workload)
}

/// The full SPEC-like suite at the given scale, in figure-3 order.
pub fn spec_suite(scale: Scale) -> Vec<Workload> {
    SPEC_NAMES
        .iter()
        .map(|name| spec_workload(name, scale).expect("every listed benchmark has a kernel"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_names_exactly_once() {
        let suite = spec_suite(Scale::Tiny);
        assert_eq!(suite.len(), SPEC_NAMES.len());
        for (w, name) in suite.iter().zip(SPEC_NAMES.iter()) {
            assert_eq!(w.name, *name);
            assert!(!w.description.is_empty());
        }
    }

    #[test]
    fn unknown_names_yield_none() {
        assert!(spec_workload("not-a-benchmark", Scale::Tiny).is_none());
    }

    #[test]
    fn scale_changes_program_size_or_data() {
        let tiny = spec_workload("libquantum", Scale::Tiny).unwrap();
        let large = spec_workload("libquantum", Scale::Large).unwrap();
        // Same static program shape, but the iteration limits differ, which we
        // can observe through the data segments / immediate operands; the
        // simplest observable is that both build and are distinct programs.
        assert_ne!(
            tiny.thread_programs[0], large.thread_programs[0],
            "scaling must change the generated program"
        );
    }
}
