//! Synthetic workload suites for the MuonTrap reproduction.
//!
//! The paper evaluates on SPEC CPU2006 (single-threaded) and Parsec
//! (multi-threaded, 4 threads). We cannot ship or run those binaries, so this
//! crate provides µISA kernels that reproduce the *behaviour classes* the
//! paper's analysis leans on — streaming, pointer chasing, random access,
//! compute-bound floating point, hard-to-predict branches, blocked working
//! sets, and (for the Parsec-like suite) data-parallel loops, shared
//! read-mostly structures, lock-protected updates and atomic-counter work
//! sharing.
//!
//! Each synthetic kernel keeps the name of the closest SPEC/Parsec benchmark
//! so the regenerated figures line up with the paper's, and EXPERIMENTS.md
//! records the mapping. The absolute instruction counts are deliberately much
//! smaller than the original benchmarks (hundreds of billions of instructions
//! would be intractable here); the `scale` parameter grows every kernel's
//! working set and iteration count together.
//!
//! # Example
//!
//! ```
//! use workloads::{spec_suite, parsec_suite, Scale};
//!
//! let spec = spec_suite(Scale::Small);
//! assert!(spec.iter().any(|w| w.name == "mcf"));
//! let parsec = parsec_suite(Scale::Small, 4);
//! assert!(parsec.iter().all(|w| w.thread_programs.len() == 4));
//! ```

#![forbid(unsafe_code)]

pub mod kernels;
pub mod parsec;
pub mod spec;

use uarch_isa::prog::Program;

pub use parsec::parsec_suite;
pub use spec::spec_suite;

/// How large to make each kernel's working set and iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Quick runs for unit and integration tests (a few thousand dynamic
    /// instructions per kernel).
    Tiny,
    /// The default used by the figure harnesses (tens of thousands of dynamic
    /// instructions per kernel).
    Small,
    /// Longer runs for more stable measurements.
    Large,
}

impl Scale {
    /// Every scale, in increasing-size order (for CLI help and tests).
    pub const ALL: [Scale; 3] = [Scale::Tiny, Scale::Small, Scale::Large];

    /// The stable lower-case name used by `Display`/`FromStr` and the
    /// `--scale` CLI flag.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Large => "large",
        }
    }

    /// A multiplier applied to iteration counts.
    pub fn iterations(self, base: u64) -> u64 {
        match self {
            Scale::Tiny => (base / 8).max(4),
            Scale::Small => base,
            Scale::Large => base * 4,
        }
    }

    /// A multiplier applied to working-set element counts.
    pub fn elements(self, base: u64) -> u64 {
        match self {
            Scale::Tiny => (base / 8).max(16),
            Scale::Small => base,
            Scale::Large => base * 4,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing a [`Scale`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScaleError(String);

impl std::fmt::Display for ParseScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scale `{}` (expected tiny, small or large)",
            self.0
        )
    }
}

impl std::error::Error for ParseScaleError {}

impl std::str::FromStr for Scale {
    type Err = ParseScaleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scale::ALL
            .into_iter()
            .find(|scale| scale.name() == s)
            .ok_or_else(|| ParseScaleError(s.to_string()))
    }
}

/// A workload: one or more thread programs plus metadata.
///
/// `Eq`/`Hash` compare the full program contents; the experiment session
/// relies on this to fingerprint workloads for its baseline-run cache.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Workload {
    /// The benchmark name this kernel stands in for (e.g. "mcf", "canneal").
    pub name: String,
    /// One µISA program per hardware thread. Single-threaded workloads have
    /// exactly one entry; Parsec-like workloads have one per thread with the
    /// thread id baked in.
    pub thread_programs: Vec<Program>,
    /// Whether the threads share one functional memory (same process). All
    /// Parsec-like workloads do.
    pub shared_memory: bool,
    /// A per-run simulated-cycle budget after which the run is abandoned.
    pub cycle_budget: u64,
    /// One-line description of the behaviour class the kernel exercises.
    pub description: String,
}

/// The domain-switch-heavy suite: kernels that cross protection domains
/// (syscalls and sandbox boundaries) every few hundred instructions, the
/// cadence the paper's §4.8 flush-cost discussion assumes. MuonTrap flushes
/// its filter caches on every one of these transitions, so these workloads
/// put an upper bound on the flush path's overhead that the SPEC-like and
/// Parsec-like suites (which switch domains rarely) cannot expose.
pub fn domain_switch_suite(scale: Scale) -> Vec<Workload> {
    use kernels::{syscall_sandbox, DomainSwitchParams};
    vec![
        Workload::single(
            "syscall-storm",
            syscall_sandbox(
                "syscall-storm",
                DomainSwitchParams {
                    bursts: scale.iterations(192),
                    // ~8 dynamic instructions per iteration: a domain switch
                    // roughly every 250 instructions.
                    work_per_burst: 32,
                    elements: scale.elements(512),
                    seed: 71,
                },
            ),
            "syscall-dense server behaviour: filter-cache flush every ~250 instructions",
        ),
        Workload::single(
            "sandbox-hop",
            syscall_sandbox(
                "sandbox-hop",
                DomainSwitchParams {
                    bursts: scale.iterations(96),
                    // Longer bursts: a switch every ~750 instructions, with a
                    // working set large enough that refills dominate.
                    work_per_burst: 96,
                    elements: scale.elements(1024),
                    seed: 73,
                },
            ),
            "in-process sandbox host behaviour: enter/exit round trips with cold refills",
        ),
    ]
}

impl Workload {
    /// Creates a single-threaded workload.
    pub fn single(
        name: impl Into<String>,
        program: Program,
        description: impl Into<String>,
    ) -> Self {
        Workload {
            name: name.into(),
            thread_programs: vec![program],
            shared_memory: false,
            cycle_budget: 30_000_000,
            description: description.into(),
        }
    }

    /// Creates a multi-threaded shared-memory workload.
    pub fn parallel(
        name: impl Into<String>,
        thread_programs: Vec<Program>,
        description: impl Into<String>,
    ) -> Self {
        Workload {
            name: name.into(),
            thread_programs,
            shared_memory: true,
            cycle_budget: 60_000_000,
            description: description.into(),
        }
    }

    /// Number of hardware threads this workload wants.
    pub fn num_threads(&self) -> usize {
        self.thread_programs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::interp::Interpreter;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.iterations(64) < Scale::Small.iterations(64));
        assert!(Scale::Small.iterations(64) < Scale::Large.iterations(64));
        assert!(Scale::Tiny.elements(1024) < Scale::Large.elements(1024));
    }

    #[test]
    fn every_spec_kernel_halts_functionally() {
        for w in spec_suite(Scale::Tiny) {
            assert_eq!(w.num_threads(), 1, "{} must be single-threaded", w.name);
            let mut interp = Interpreter::new(&w.thread_programs[0]);
            let result = interp.run(5_000_000);
            assert!(
                result.is_ok(),
                "workload {} did not halt functionally",
                w.name
            );
        }
    }

    #[test]
    fn every_parsec_kernel_thread_halts_functionally() {
        // Threads are validated independently: cross-thread synchronisation is
        // written so that a thread spinning on a flag that is never set still
        // terminates via its bounded spin counter.
        for w in parsec_suite(Scale::Tiny, 2) {
            assert!(w.shared_memory);
            assert_eq!(w.num_threads(), 2);
            for (i, p) in w.thread_programs.iter().enumerate() {
                let mut interp = Interpreter::new(p);
                let result = interp.run(5_000_000);
                assert!(
                    result.is_ok(),
                    "workload {} thread {i} did not halt",
                    w.name
                );
            }
        }
    }

    #[test]
    fn domain_switch_suite_halts_and_scales() {
        for scale in [Scale::Tiny, Scale::Small] {
            for w in domain_switch_suite(scale) {
                assert_eq!(w.num_threads(), 1);
                let mut interp = Interpreter::new(&w.thread_programs[0]);
                assert!(
                    interp.run(20_000_000).is_ok(),
                    "workload {} at {scale} did not halt",
                    w.name
                );
            }
        }
        let names: Vec<String> = domain_switch_suite(Scale::Tiny)
            .into_iter()
            .map(|w| w.name)
            .collect();
        assert_eq!(names, vec!["syscall-storm", "sandbox-hop"]);
    }

    #[test]
    fn scale_display_from_str_round_trips_every_variant() {
        for scale in Scale::ALL {
            let text = scale.to_string();
            assert_eq!(
                text.parse::<Scale>(),
                Ok(scale),
                "round-trip failed for {text}"
            );
        }
        assert!("medium".parse::<Scale>().is_err());
        assert!("".parse::<Scale>().is_err());
    }

    #[test]
    fn suite_names_match_the_paper() {
        let spec: Vec<String> = spec_suite(Scale::Tiny)
            .into_iter()
            .map(|w| w.name)
            .collect();
        for expected in [
            "astar",
            "bwaves",
            "mcf",
            "lbm",
            "omnetpp",
            "xalancbmk",
            "zeusmp",
        ] {
            assert!(
                spec.contains(&expected.to_string()),
                "missing SPEC kernel {expected}"
            );
        }
        let parsec: Vec<String> = parsec_suite(Scale::Tiny, 4)
            .into_iter()
            .map(|w| w.name)
            .collect();
        for expected in [
            "blackscholes",
            "canneal",
            "ferret",
            "fluidanimate",
            "freqmine",
            "streamcluster",
            "swaptions",
        ] {
            assert!(
                parsec.contains(&expected.to_string()),
                "missing Parsec kernel {expected}"
            );
        }
    }
}
