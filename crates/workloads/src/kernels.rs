//! Parameterised kernel generators.
//!
//! Each generator emits a µISA program exhibiting one memory/branch behaviour
//! class. The SPEC-like and Parsec-like suites are thin mappings from
//! benchmark names onto these generators with different parameters.

use simkit::addr::VirtAddr;
use simkit::rng::SimRng;
use uarch_isa::inst::{AluOp, BranchCond, FpuOp};
use uarch_isa::prog::{Program, ProgramBuilder};
use uarch_isa::reg::Reg;

/// Base virtual address of the heap used by all kernels.
pub const HEAP_BASE: u64 = 0x10_0000;

/// Conventional register roles used by the generators.
const BASE: Reg = Reg::X1;
const IDX: Reg = Reg::X2;
const ACC: Reg = Reg::X3;
const TMP: Reg = Reg::X4;
const VAL: Reg = Reg::X5;
const PTR: Reg = Reg::X6;
const LIMIT: Reg = Reg::X7;
const BASE2: Reg = Reg::X9;
const TID: Reg = Reg::X10;
const LOCK: Reg = Reg::X11;
const SCRATCH: Reg = Reg::X12;

/// Parameters for a streaming (sequential-access) kernel.
#[derive(Debug, Clone, Copy)]
pub struct StreamParams {
    /// Number of 8-byte elements per array.
    pub elements: u64,
    /// Number of passes over the arrays.
    pub passes: u64,
    /// Number of distinct arrays streamed concurrently (1–3).
    pub arrays: u64,
    /// Whether the inner loop writes one of the arrays.
    pub writes: bool,
    /// Whether floating-point work is done per element.
    pub fp: bool,
}

/// Generates a streaming kernel: sequential loads (and optionally stores) over
/// one or more large arrays, the behaviour of `bwaves`, `lbm`, `libquantum`,
/// `GemsFDTD`, `milc` and `leslie3d`.
pub fn stream(name: &str, p: StreamParams) -> Program {
    let mut b = ProgramBuilder::new(name);
    let array_bytes = p.elements * 8;
    // Initialise the first array with data so loads return varied values.
    let init: Vec<u64> = (0..p.elements.min(512)).map(|i| i * 3 + 1).collect();
    b.data_u64(VirtAddr::new(HEAP_BASE), &init);

    b.li(ACC, 0);
    b.li(Reg::X20, 0); // pass counter
    let pass_top = b.here();
    b.li(BASE, HEAP_BASE);
    b.li(BASE2, HEAP_BASE + array_bytes);
    b.li(Reg::X21, HEAP_BASE + 2 * array_bytes);
    b.li(IDX, 0);
    b.li(LIMIT, p.elements);
    let loop_top = b.here();
    // Element address = base + idx*8.
    b.shli(TMP, IDX, 3);
    b.add(PTR, BASE, TMP);
    b.load(VAL, PTR, 0);
    if p.arrays >= 2 {
        b.add(PTR, BASE2, TMP);
        b.load(SCRATCH, PTR, 0);
        b.add(VAL, VAL, SCRATCH);
    }
    if p.fp {
        b.fpu(FpuOp::FMul, VAL, VAL, VAL);
        b.fpu(FpuOp::FAdd, ACC, ACC, VAL);
    } else {
        b.add(ACC, ACC, VAL);
    }
    if p.writes {
        let dest = if p.arrays >= 3 { Reg::X21 } else { BASE2 };
        b.add(PTR, dest, TMP);
        b.store(ACC, PTR, 0);
    }
    b.addi(IDX, IDX, 1);
    b.blt(IDX, LIMIT, loop_top);
    b.addi(Reg::X20, Reg::X20, 1);
    b.li(TMP, p.passes);
    b.blt(Reg::X20, TMP, pass_top);
    b.halt();
    b.build().expect("stream kernel builds")
}

/// Parameters for a pointer-chasing kernel.
#[derive(Debug, Clone, Copy)]
pub struct ChaseParams {
    /// Number of nodes in the linked structure.
    pub nodes: u64,
    /// Number of pointer dereferences to perform.
    pub hops: u64,
    /// Random seed for the permutation.
    pub seed: u64,
}

/// Generates a pointer-chasing kernel: a random circular permutation is
/// walked, so every load's address depends on the previous load's value. This
/// is the latency-bound behaviour of `mcf`, `omnetpp`, `xalancbmk` and
/// `astar`.
pub fn pointer_chase(name: &str, p: ChaseParams) -> Program {
    let mut b = ProgramBuilder::new(name);
    let mut rng = SimRng::seed_from(p.seed);
    // Build a random cycle over the nodes: node i stores the address of its
    // successor in the permutation.
    let mut order: Vec<u64> = (0..p.nodes).collect();
    rng.shuffle(&mut order);
    let mut next = vec![0u64; p.nodes as usize];
    for i in 0..p.nodes as usize {
        let from = order[i] as usize;
        let to = order[(i + 1) % p.nodes as usize];
        next[from] = HEAP_BASE + to * 8;
    }
    b.data_u64(VirtAddr::new(HEAP_BASE), &next);

    b.li(PTR, HEAP_BASE + order[0] * 8);
    b.li(IDX, 0);
    b.li(LIMIT, p.hops);
    b.li(ACC, 0);
    let loop_top = b.here();
    let no_payload = b.new_label();
    b.load(PTR, PTR, 0); // follow the pointer: the next address is the value
    b.add(ACC, ACC, PTR);
    // A data-dependent "visit the node payload?" decision, as real graph and
    // event-queue codes have: the branch condition comes from the (often
    // missing) pointer load, and the payload load underneath it derives its
    // address from the same value — the STT transmitter pattern.
    b.andi(TMP, PTR, 0x38);
    b.bne(TMP, Reg::X0, no_payload);
    b.load(SCRATCH, PTR, 8);
    b.add(ACC, ACC, SCRATCH);
    b.bind_label(no_payload);
    b.addi(IDX, IDX, 1);
    b.blt(IDX, LIMIT, loop_top);
    b.halt();
    b.build().expect("pointer-chase kernel builds")
}

/// Parameters for a random-access (scatter/gather) kernel.
#[derive(Debug, Clone, Copy)]
pub struct RandomAccessParams {
    /// Number of 8-byte elements in the table.
    pub elements: u64,
    /// Number of accesses performed.
    pub accesses: u64,
    /// Whether each access also writes the element back.
    pub update: bool,
    /// Random seed.
    pub seed: u64,
}

/// Generates a random-access (gather) kernel: an index array is walked
/// sequentially and each loaded index addresses a scattered load (and
/// optionally a store) in a large table — `table[index_array[i]]`, the
/// behaviour of `gcc`, `hmmer`'s miss phases, `soplex`, `sphinx3` and
/// `canneal`'s private phase. The data load's address depends on a loaded
/// value, which is precisely the load→load dependence that taint-tracking
/// defenses (STT) must block while speculative.
pub fn random_access(name: &str, p: RandomAccessParams) -> Program {
    let mut b = ProgramBuilder::new(name);
    let mut rng = SimRng::seed_from(p.seed);
    // The scattered data table.
    let init: Vec<u64> = (0..p.elements.min(512)).map(|i| i ^ 0x5a5a).collect();
    b.data_u64(VirtAddr::new(HEAP_BASE), &init);
    // The index array: a random permutation fragment driving the gathers.
    let index_entries = p.elements.min(4096);
    let index_base = HEAP_BASE + p.elements * 8;
    let indices: Vec<u64> = (0..index_entries).map(|_| rng.below(p.elements)).collect();
    b.data_u64(VirtAddr::new(index_base), &indices);

    b.li(BASE, HEAP_BASE);
    b.li(BASE2, index_base);
    b.li(IDX, 0);
    b.li(LIMIT, p.accesses);
    b.li(ACC, 0);
    b.li(Reg::X21, 0); // previous gathered value
    let loop_top = b.here();
    let skip_extra = b.new_label();
    // index = index_array[i % index_entries]
    b.alui(AluOp::Rem, TMP, IDX, index_entries as i64);
    b.shli(TMP, TMP, 3);
    b.add(PTR, BASE2, TMP);
    b.load(VAL, PTR, 0);
    // A data-dependent early-out on the previous iteration's gathered value
    // (which often missed): while it is unresolved, the gather below is a
    // speculative transmitter.
    b.andi(Reg::X22, Reg::X21, 1);
    b.bne(Reg::X22, Reg::X0, skip_extra);
    b.nop();
    b.bind_label(skip_extra);
    // address = table + index*8  (load-dependent address: the gather)
    b.shli(VAL, VAL, 3);
    b.add(PTR, BASE, VAL);
    b.load(SCRATCH, PTR, 0);
    b.add(ACC, ACC, SCRATCH);
    b.add(Reg::X21, SCRATCH, Reg::X0);
    if p.update {
        b.xor(SCRATCH, SCRATCH, ACC);
        b.store(SCRATCH, PTR, 0);
    }
    b.addi(IDX, IDX, 1);
    b.blt(IDX, LIMIT, loop_top);
    b.halt();
    b.build().expect("random-access kernel builds")
}

/// Parameters for a compute-bound kernel.
#[derive(Debug, Clone, Copy)]
pub struct ComputeParams {
    /// Outer iterations.
    pub iterations: u64,
    /// Arithmetic operations per loaded element.
    pub ops_per_element: u64,
    /// Elements in the (small, cache-resident) working set.
    pub elements: u64,
    /// Whether the arithmetic is floating point.
    pub fp: bool,
}

/// Generates a compute-bound kernel: a small cache-resident working set with a
/// long arithmetic chain per element, the behaviour of `calculix`, `gamess`,
/// `namd`, `povray`, `tonto`, `gromacs`, `h264ref` and `blackscholes` /
/// `swaptions` on the Parsec side.
pub fn compute(name: &str, p: ComputeParams) -> Program {
    let mut b = ProgramBuilder::new(name);
    let init: Vec<u64> = (0..p.elements).map(|i| (i + 1) * 97).collect();
    b.data_u64(VirtAddr::new(HEAP_BASE), &init);

    b.li(Reg::X20, 0);
    let outer = b.here();
    b.li(BASE, HEAP_BASE);
    b.li(IDX, 0);
    b.li(LIMIT, p.elements);
    b.li(ACC, 1);
    let loop_top = b.here();
    b.shli(TMP, IDX, 3);
    b.add(PTR, BASE, TMP);
    b.load(VAL, PTR, 0);
    for k in 0..p.ops_per_element {
        if p.fp {
            match k % 3 {
                0 => b.fpu(FpuOp::FMul, ACC, ACC, VAL),
                1 => b.fpu(FpuOp::FAdd, ACC, ACC, VAL),
                _ => b.fpu(FpuOp::FSub, VAL, VAL, ACC),
            };
        } else {
            match k % 4 {
                0 => b.mul(ACC, ACC, VAL),
                1 => b.add(ACC, ACC, VAL),
                2 => b.xor(VAL, VAL, ACC),
                _ => b.alui(AluOp::Shr, VAL, VAL, 1),
            };
        }
    }
    b.store(ACC, PTR, 0);
    b.addi(IDX, IDX, 1);
    b.blt(IDX, LIMIT, loop_top);
    b.addi(Reg::X20, Reg::X20, 1);
    b.li(TMP, p.iterations);
    b.blt(Reg::X20, TMP, outer);
    b.halt();
    b.build().expect("compute kernel builds")
}

/// Parameters for a branchy kernel.
#[derive(Debug, Clone, Copy)]
pub struct BranchyParams {
    /// Number of decisions taken.
    pub decisions: u64,
    /// Number of 8-byte elements in the decision table.
    pub elements: u64,
    /// Random seed for the table contents (controls predictability).
    pub seed: u64,
}

/// Generates a branch-heavy kernel with data-dependent, hard-to-predict
/// branches over a table, the behaviour of `gobmk`, `sjeng`, `bzip2` and
/// `astar`'s search phase. Mispredictions make wrong-path loads common (the
/// behaviour MuonTrap's filter cache must absorb), and the dependent gather on
/// the taken path sits underneath a branch whose condition is still waiting on
/// a (possibly missing) load — exactly the load→branch→dependent-load shape
/// that taint-tracking defenses must stall on.
pub fn branchy(name: &str, p: BranchyParams) -> Program {
    let mut b = ProgramBuilder::new(name);
    let mut rng = SimRng::seed_from(p.seed);
    let table: Vec<u64> = (0..p.elements).map(|_| rng.below(16)).collect();
    b.data_u64(VirtAddr::new(HEAP_BASE), &table);
    // A second table indexed by the *loaded* decision value (a gather), so the
    // taken path's load address derives from speculative load data.
    let other: Vec<u64> = (0..p.elements)
        .map(|i| i.wrapping_mul(37) % p.elements)
        .collect();
    b.data_u64(VirtAddr::new(HEAP_BASE + p.elements * 8), &other);

    b.li(BASE, HEAP_BASE);
    b.li(BASE2, HEAP_BASE + p.elements * 8);
    b.li(IDX, 0);
    b.li(LIMIT, p.decisions);
    b.li(ACC, 0);
    let loop_top = b.here();
    let skip = b.new_label();
    let join = b.new_label();
    // Walk the decision table with a large stride so the decision load misses
    // regularly and the branch below stays unresolved for a while.
    b.li(TMP, 61);
    b.mul(TMP, IDX, TMP);
    b.alui(AluOp::Rem, TMP, TMP, p.elements as i64);
    b.shli(TMP, TMP, 3);
    b.add(PTR, BASE, TMP);
    b.load(VAL, PTR, 0);
    b.li(SCRATCH, 8);
    b.branch(BranchCond::Lt, VAL, SCRATCH, skip);
    // Taken path: a gather whose address depends on the decision value, plus a
    // second-level dependent load — both are "transmitters" in STT terms.
    b.shli(SCRATCH, VAL, 3);
    b.add(PTR, BASE2, SCRATCH);
    b.load(SCRATCH, PTR, 0);
    b.shli(SCRATCH, SCRATCH, 3);
    b.add(PTR, BASE, SCRATCH);
    b.load(SCRATCH, PTR, 0);
    b.add(ACC, ACC, SCRATCH);
    b.mul(ACC, ACC, VAL);
    b.jump(join);
    b.bind_label(skip);
    // Not-taken path: cheap arithmetic only.
    b.xor(ACC, ACC, VAL);
    b.bind_label(join);
    b.addi(IDX, IDX, 1);
    b.blt(IDX, LIMIT, loop_top);
    b.halt();
    b.build().expect("branchy kernel builds")
}

/// Parameters for a blocked stencil kernel.
#[derive(Debug, Clone, Copy)]
pub struct StencilParams {
    /// Grid dimension (the grid is `dim` x `dim` 8-byte cells).
    pub dim: u64,
    /// Sweeps over the grid.
    pub sweeps: u64,
}

/// Generates a 2D 5-point stencil kernel: each cell is updated from its four
/// neighbours, giving the strided reuse pattern of `cactusADM`, `zeusmp`,
/// `leslie3d` and `fluidanimate`.
pub fn stencil(name: &str, p: StencilParams) -> Program {
    let mut b = ProgramBuilder::new(name);
    let init: Vec<u64> = (0..(p.dim * p.dim).min(1024)).map(|i| i * 5 + 3).collect();
    b.data_u64(VirtAddr::new(HEAP_BASE), &init);
    let row_bytes = p.dim * 8;

    b.li(Reg::X20, 0);
    let sweep_top = b.here();
    b.li(Reg::X22, 1); // row
    let row_loop = b.here();
    b.li(Reg::X23, 1); // column
    let col_loop = b.here();
    // addr = base + row*row_bytes + col*8
    b.li(BASE, HEAP_BASE);
    b.li(TMP, row_bytes);
    b.mul(TMP, Reg::X22, TMP);
    b.add(TMP, TMP, BASE);
    b.shli(SCRATCH, Reg::X23, 3);
    b.add(PTR, TMP, SCRATCH);
    // Load the four neighbours and the centre.
    b.load(VAL, PTR, 0);
    b.load(SCRATCH, PTR, 8);
    b.add(VAL, VAL, SCRATCH);
    b.load(SCRATCH, PTR, -8);
    b.add(VAL, VAL, SCRATCH);
    b.load(SCRATCH, PTR, row_bytes as i64);
    b.add(VAL, VAL, SCRATCH);
    b.load(SCRATCH, PTR, -(row_bytes as i64));
    b.add(VAL, VAL, SCRATCH);
    b.shri(VAL, VAL, 2);
    b.store(VAL, PTR, 0);
    b.addi(Reg::X23, Reg::X23, 1);
    b.li(TMP, p.dim - 1);
    b.blt(Reg::X23, TMP, col_loop);
    b.addi(Reg::X22, Reg::X22, 1);
    b.li(TMP, p.dim - 1);
    b.blt(Reg::X22, TMP, row_loop);
    b.addi(Reg::X20, Reg::X20, 1);
    b.li(TMP, p.sweeps);
    b.blt(Reg::X20, TMP, sweep_top);
    b.halt();
    b.build().expect("stencil kernel builds")
}

/// Parameters for a domain-switch-heavy kernel.
#[derive(Debug, Clone, Copy)]
pub struct DomainSwitchParams {
    /// Number of protection-domain bursts (each ends in a syscall or a
    /// sandbox round trip).
    pub bursts: u64,
    /// Loop iterations of memory work per burst — each iteration is ~8
    /// dynamic instructions, so a few dozen here puts a domain switch every
    /// few hundred instructions, the cadence §4.8 of the paper discusses.
    pub work_per_burst: u64,
    /// 8-byte elements in the working set the bursts walk. Sized near the
    /// filter-cache capacity, this makes each post-switch refill expensive.
    pub elements: u64,
    /// Random seed for the gather indices.
    pub seed: u64,
}

/// Generates a domain-switch-heavy kernel: short bursts of cache-warming
/// gather work punctuated by protection-domain transitions — even bursts end
/// in a syscall, odd bursts run inside a `sandbox_enter`/`sandbox_exit`
/// region — so the speculative filter caches are flushed every few hundred
/// instructions (MuonTrap flushes on every syscall and sandbox boundary,
/// §4.8). This is the behaviour of syscall-dense servers and in-process
/// sandbox hosts (JITs, WebAssembly runtimes), and it stresses exactly the
/// path the paper's context/domain-switch overhead argument leans on: a
/// defense that keeps speculative state in a tiny flushable structure pays
/// for re-warming it after every transition.
pub fn syscall_sandbox(name: &str, p: DomainSwitchParams) -> Program {
    let mut b = ProgramBuilder::new(name);
    let mut rng = SimRng::seed_from(p.seed);
    let table: Vec<u64> = (0..p.elements.min(1024)).map(|i| i * 7 + 3).collect();
    b.data_u64(VirtAddr::new(HEAP_BASE), &table);
    // Private gather-index list, so the burst's loads wander the working set
    // rather than streaming (a streaming burst would hide the refill cost).
    let index_base = HEAP_BASE + p.elements * 8;
    let index_entries = 512u64;
    let indices: Vec<u64> = (0..index_entries).map(|_| rng.below(p.elements)).collect();
    b.data_u64(VirtAddr::new(index_base), &indices);

    b.li(BASE, HEAP_BASE);
    b.li(BASE2, index_base);
    b.li(ACC, 0);
    b.li(Reg::X20, 0); // burst counter
    let burst_top = b.here();

    // Odd bursts run sandboxed: enter before the work, exit after.
    let not_sandboxed_enter = b.new_label();
    b.andi(TMP, Reg::X20, 1);
    b.beq(TMP, Reg::X0, not_sandboxed_enter);
    b.sandbox_enter();
    b.bind_label(not_sandboxed_enter);

    // The burst: gather-accumulate over the working set.
    b.li(IDX, 0);
    b.li(LIMIT, p.work_per_burst);
    let work_top = b.here();
    b.mul(TMP, Reg::X20, LIMIT);
    b.add(TMP, TMP, IDX);
    b.alui(AluOp::Rem, TMP, TMP, index_entries as i64);
    b.shli(TMP, TMP, 3);
    b.add(PTR, BASE2, TMP);
    b.load(VAL, PTR, 0); // index load
    b.shli(VAL, VAL, 3);
    b.add(PTR, BASE, VAL);
    b.load(SCRATCH, PTR, 0); // dependent gather into the working set
    b.add(ACC, ACC, SCRATCH);
    b.addi(IDX, IDX, 1);
    b.blt(IDX, LIMIT, work_top);

    // End of burst: leave the domain. Odd bursts exit the sandbox, even
    // bursts make a syscall — either way the filter caches flush.
    let even_burst = b.new_label();
    let burst_done = b.new_label();
    b.andi(TMP, Reg::X20, 1);
    b.beq(TMP, Reg::X0, even_burst);
    b.sandbox_exit();
    b.jump(burst_done);
    b.bind_label(even_burst);
    b.syscall(1);
    b.bind_label(burst_done);

    b.addi(Reg::X20, Reg::X20, 1);
    b.li(TMP, p.bursts);
    b.blt(Reg::X20, TMP, burst_top);
    b.halt();
    b.build().expect("syscall-sandbox kernel builds")
}

/// Parameters for the shared-memory parallel kernels.
#[derive(Debug, Clone, Copy)]
pub struct ParallelParams {
    /// This thread's id (0-based).
    pub thread_id: u64,
    /// Total number of threads.
    pub num_threads: u64,
    /// Elements in the shared array.
    pub elements: u64,
    /// Iterations of the thread's main loop.
    pub iterations: u64,
    /// Random seed.
    pub seed: u64,
}

/// Virtual address of the lock word used by lock-based parallel kernels.
pub const LOCK_ADDR: u64 = 0x8_0000;

/// Virtual address of the shared work-counter used by work-stealing kernels.
pub const COUNTER_ADDR: u64 = 0x8_0040;

/// Generates a data-parallel kernel: each thread works on a disjoint chunk of
/// a shared array with no synchronisation (the behaviour of `blackscholes`
/// and `swaptions`).
pub fn data_parallel(name: &str, p: ParallelParams, fp_ops: u64) -> Program {
    let mut b = ProgramBuilder::new(name);
    if p.thread_id == 0 {
        let init: Vec<u64> = (0..p.elements.min(1024)).map(|i| i * 11 + 7).collect();
        b.data_u64(VirtAddr::new(HEAP_BASE), &init);
    }
    let chunk = p.elements / p.num_threads;
    let start = p.thread_id * chunk;

    b.li(TID, p.thread_id);
    b.li(Reg::X20, 0);
    let outer = b.here();
    b.li(BASE, HEAP_BASE + start * 8);
    b.li(IDX, 0);
    b.li(LIMIT, chunk);
    let loop_top = b.here();
    b.shli(TMP, IDX, 3);
    b.add(PTR, BASE, TMP);
    b.load(VAL, PTR, 0);
    for k in 0..fp_ops {
        if k % 2 == 0 {
            b.fpu(FpuOp::FMul, VAL, VAL, VAL);
        } else {
            b.fpu(FpuOp::FAdd, VAL, VAL, ACC);
        }
    }
    b.store(VAL, PTR, 0);
    b.addi(IDX, IDX, 1);
    b.blt(IDX, LIMIT, loop_top);
    b.addi(Reg::X20, Reg::X20, 1);
    b.li(TMP, p.iterations);
    b.blt(Reg::X20, TMP, outer);
    b.halt();
    b.build().expect("data-parallel kernel builds")
}

/// Generates a shared read-mostly kernel: every thread repeatedly reads a
/// shared table (cluster centres) and accumulates into a private region, with
/// an occasional atomic update of the shared table (the behaviour of
/// `streamcluster` and `freqmine`).
pub fn shared_read_mostly(name: &str, p: ParallelParams, update_period: u64) -> Program {
    let mut b = ProgramBuilder::new(name);
    if p.thread_id == 0 {
        let init: Vec<u64> = (0..p.elements.min(1024)).map(|i| i + 1).collect();
        b.data_u64(VirtAddr::new(HEAP_BASE), &init);
    }
    // Private accumulation region per thread, far from the shared table.
    let private_base = HEAP_BASE + 0x40_0000 + p.thread_id * 0x1_0000;

    // Private index array: each thread walks its own randomised gather list,
    // so the shared-table address depends on a loaded value (as it does in the
    // real benchmarks, where points/transactions are read from memory).
    let index_base = HEAP_BASE + 0x20_0000 + p.thread_id * 0x2_0000;
    let mut rng = SimRng::seed_from(p.seed.wrapping_mul(31).wrapping_add(p.thread_id));
    let index_entries = 1024u64;
    let indices: Vec<u64> = (0..index_entries).map(|_| rng.below(p.elements)).collect();
    b.data_u64(VirtAddr::new(index_base), &indices);

    b.li(TID, p.thread_id);
    b.li(IDX, 0);
    b.li(LIMIT, p.iterations);
    b.li(ACC, 0);
    let loop_top = b.here();
    // Read the next gather index from the private index array, then read the
    // shared element it names.
    b.alui(AluOp::Rem, VAL, IDX, index_entries as i64);
    b.shli(VAL, VAL, 3);
    b.li(BASE, index_base);
    b.add(PTR, BASE, VAL);
    b.load(VAL, PTR, 0);
    b.shli(VAL, VAL, 3);
    b.li(BASE, HEAP_BASE);
    b.add(PTR, BASE, VAL);
    b.load(SCRATCH, PTR, 0);
    b.add(ACC, ACC, SCRATCH);
    // A data-dependent refinement step, as the real clustering/mining codes
    // have: whether the second (dependent) shared read happens is decided by
    // the value just loaded, so it executes under an unresolved branch.
    let skip_refine = b.new_label();
    b.andi(TMP, SCRATCH, 3);
    b.bne(TMP, Reg::X0, skip_refine);
    b.shli(TMP, SCRATCH, 3);
    b.alui(AluOp::Rem, TMP, TMP, (p.elements * 8) as i64);
    b.add(PTR, BASE, TMP);
    b.load(TMP, PTR, 0);
    b.add(ACC, ACC, TMP);
    b.bind_label(skip_refine);
    // Accumulate into the private region.
    b.li(BASE2, private_base);
    b.alui(AluOp::Rem, TMP, IDX, 512);
    b.shli(TMP, TMP, 3);
    b.add(BASE2, BASE2, TMP);
    b.store(ACC, BASE2, 0);
    // Occasionally update the shared element atomically.
    let skip_update = b.new_label();
    b.alui(AluOp::Rem, TMP, IDX, update_period as i64);
    b.bne(TMP, Reg::X0, skip_update);
    b.amoadd(SCRATCH, ACC, PTR);
    b.bind_label(skip_update);
    b.addi(IDX, IDX, 1);
    b.blt(IDX, LIMIT, loop_top);
    b.halt();
    b.build().expect("shared-read-mostly kernel builds")
}

/// Generates a lock-based kernel: threads acquire a spinlock (bounded spin so
/// the program always terminates), mutate a shared region, and release it
/// (the behaviour of `fluidanimate` and `canneal`'s shared phase).
pub fn lock_based(name: &str, p: ParallelParams, critical_len: u64) -> Program {
    let mut b = ProgramBuilder::new(name);
    if p.thread_id == 0 {
        b.data_u64(VirtAddr::new(LOCK_ADDR), &[0]);
        let init: Vec<u64> = (0..p.elements.min(512)).collect();
        b.data_u64(VirtAddr::new(HEAP_BASE), &init);
    }

    b.li(TID, p.thread_id);
    b.li(IDX, 0);
    b.li(LIMIT, p.iterations);
    let loop_top = b.here();

    // Bounded spinlock acquire: try up to 64 times, then proceed anyway (the
    // data race is benign for a synthetic kernel and bounds functional runs).
    b.li(LOCK, LOCK_ADDR);
    b.li(Reg::X24, 0);
    let try_acquire = b.here();
    let acquired = b.new_label();
    b.li(SCRATCH, 1);
    b.amoswap(VAL, SCRATCH, LOCK);
    b.beq(VAL, Reg::X0, acquired);
    b.addi(Reg::X24, Reg::X24, 1);
    b.li(TMP, 64);
    b.blt(Reg::X24, TMP, try_acquire);
    b.bind_label(acquired);

    // Critical section: read-modify-write a few shared elements.
    b.li(BASE, HEAP_BASE);
    b.alui(AluOp::Rem, TMP, IDX, (p.elements.max(critical_len)) as i64);
    b.shli(TMP, TMP, 3);
    b.add(PTR, BASE, TMP);
    for i in 0..critical_len {
        b.load(VAL, PTR, (i * 8) as i64);
        b.addi(VAL, VAL, 1);
        b.store(VAL, PTR, (i * 8) as i64);
    }

    // Release.
    b.li(LOCK, LOCK_ADDR);
    b.store(Reg::X0, LOCK, 0);

    b.addi(IDX, IDX, 1);
    b.blt(IDX, LIMIT, loop_top);
    b.halt();
    b.build().expect("lock-based kernel builds")
}

/// Generates a work-queue kernel: threads claim work items from a shared
/// atomic counter and process a private block per item (the behaviour of
/// `ferret`'s pipeline stages and `canneal`'s move selection).
pub fn work_queue(name: &str, p: ParallelParams, work_per_item: u64) -> Program {
    let mut b = ProgramBuilder::new(name);
    if p.thread_id == 0 {
        b.data_u64(VirtAddr::new(COUNTER_ADDR), &[0]);
        let init: Vec<u64> = (0..p.elements.min(1024)).map(|i| i * 13 + 5).collect();
        b.data_u64(VirtAddr::new(HEAP_BASE), &init);
    }

    b.li(TID, p.thread_id);
    b.li(IDX, 0);
    b.li(LIMIT, p.iterations);
    let loop_top = b.here();
    // Claim the next item.
    b.li(LOCK, COUNTER_ADDR);
    b.li(SCRATCH, 1);
    b.amoadd(VAL, SCRATCH, LOCK); // VAL = claimed item index
                                  // Process: hash the item id into the shared table and do some work on it.
    b.li(TMP, 2654435761);
    b.mul(VAL, VAL, TMP);
    b.alui(AluOp::Rem, VAL, VAL, p.elements as i64);
    b.shli(VAL, VAL, 3);
    b.li(BASE, HEAP_BASE);
    b.add(PTR, BASE, VAL);
    b.li(ACC, 0);
    for i in 0..work_per_item {
        b.load(SCRATCH, PTR, (i % 8 * 8) as i64);
        b.add(ACC, ACC, SCRATCH);
        b.mul(ACC, ACC, SCRATCH);
    }
    b.store(ACC, PTR, 0);
    b.addi(IDX, IDX, 1);
    b.blt(IDX, LIMIT, loop_top);
    b.halt();
    b.build().expect("work-queue kernel builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use uarch_isa::interp::Interpreter;
    use uarch_isa::reg::Reg;

    fn runs(program: &Program) -> u64 {
        let mut interp = Interpreter::new(program);
        interp.run(5_000_000).expect("kernel halts").retired
    }

    #[test]
    fn stream_kernel_runs_and_scales_with_elements() {
        let small = stream(
            "s1",
            StreamParams {
                elements: 64,
                passes: 2,
                arrays: 2,
                writes: true,
                fp: false,
            },
        );
        let large = stream(
            "s2",
            StreamParams {
                elements: 256,
                passes: 2,
                arrays: 2,
                writes: true,
                fp: false,
            },
        );
        assert!(runs(&large) > runs(&small));
    }

    #[test]
    fn pointer_chase_visits_every_node() {
        let p = pointer_chase(
            "chase",
            ChaseParams {
                nodes: 64,
                hops: 64,
                seed: 1,
            },
        );
        let mut interp = Interpreter::new(&p);
        let result = interp.run(1_000_000).unwrap();
        // After exactly `nodes` hops around a full cycle we are back at the start.
        assert!(result.retired > 64 * 3);
    }

    #[test]
    fn random_access_kernel_halts() {
        let p = random_access(
            "ra",
            RandomAccessParams {
                elements: 128,
                accesses: 200,
                update: true,
                seed: 3,
            },
        );
        assert!(runs(&p) > 200);
    }

    #[test]
    fn compute_kernel_is_dominated_by_arithmetic() {
        let p = compute(
            "c",
            ComputeParams {
                iterations: 2,
                ops_per_element: 12,
                elements: 16,
                fp: true,
            },
        );
        let retired = runs(&p);
        // At least ops_per_element arithmetic instructions per element.
        assert!(retired > 2 * 16 * 12);
    }

    #[test]
    fn branchy_kernel_has_both_paths() {
        let p = branchy(
            "b",
            BranchyParams {
                decisions: 500,
                elements: 64,
                seed: 9,
            },
        );
        let mut interp = Interpreter::new(&p);
        let result = interp.run(1_000_000).unwrap();
        assert!(
            result.regs.read(Reg::X3) != 0,
            "accumulator should mix both paths"
        );
    }

    #[test]
    fn stencil_kernel_updates_interior_cells() {
        let p = stencil("st", StencilParams { dim: 8, sweeps: 2 });
        let mut interp = Interpreter::new(&p);
        let result = interp.run(1_000_000).unwrap();
        // The interior cell (1,1) must have been rewritten.
        let addr = VirtAddr::new(HEAP_BASE + (8 + 1) * 8);
        assert_ne!(
            result.memory.read(addr, uarch_isa::inst::MemWidth::Double),
            (8 + 1) * 5 + 3
        );
    }

    #[test]
    fn syscall_sandbox_kernel_switches_domains_every_burst() {
        let p = syscall_sandbox(
            "ds",
            DomainSwitchParams {
                bursts: 16,
                work_per_burst: 24,
                elements: 128,
                seed: 5,
            },
        );
        let mut interp = Interpreter::new(&p);
        let result = interp.run(1_000_000).expect("kernel halts");
        // 16 bursts of 24 iterations × ~8 instructions plus the switches.
        assert!(result.retired > 16 * 24 * 6);
        // Both domain-transition flavours are present in the static code.
        use uarch_isa::inst::Instruction;
        assert!(p.iter().any(|i| matches!(i, Instruction::Syscall { .. })));
        assert!(p.iter().any(|i| matches!(i, Instruction::SandboxEnter)));
        assert!(p.iter().any(|i| matches!(i, Instruction::SandboxExit)));
    }

    #[test]
    fn parallel_kernels_halt_per_thread() {
        let p = ParallelParams {
            thread_id: 1,
            num_threads: 4,
            elements: 128,
            iterations: 8,
            seed: 2,
        };
        assert!(runs(&data_parallel("dp", p, 4)) > 0);
        assert!(runs(&shared_read_mostly("srm", p, 16)) > 0);
        assert!(runs(&lock_based("lb", p, 4)) > 0);
        assert!(runs(&work_queue("wq", p, 6)) > 0);
    }

    #[test]
    fn thread_zero_seeds_shared_data() {
        let p0 = ParallelParams {
            thread_id: 0,
            num_threads: 2,
            elements: 64,
            iterations: 4,
            seed: 2,
        };
        let prog = lock_based("lb0", p0, 2);
        assert!(
            !prog.data_segments().is_empty(),
            "thread 0 must initialise the shared data"
        );
        let p1 = ParallelParams { thread_id: 1, ..p0 };
        let prog1 = lock_based("lb1", p1, 2);
        assert!(
            prog1.data_segments().is_empty(),
            "other threads must not clobber shared data"
        );
    }
}
