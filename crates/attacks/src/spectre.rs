//! The end-to-end Spectre prime-and-probe attack (Attack 1 of the paper).
//!
//! Two processes share one physical page (the probe array, standing in for a
//! shared library). The *victim* runs a classic Spectre-v1 gadget:
//!
//! ```text
//! if (idx < size) {            // bounds check, trained to predict in-bounds
//!     s = secret_array[idx];   // speculative out-of-bounds read of a secret
//!     t = probe[s * 64];       // secret-dependent load: the transmitter
//! }
//! ```
//!
//! The branch's condition depends on a deliberately cold load of `size`, so
//! the two dependent loads execute far down the wrong path before the squash.
//! The victim then halts; the OS schedules the *attacker* process on the same
//! core (a protection-domain switch), and the attacker times a load of every
//! probe line with `rdcycle`, writing the index of the fastest line to a known
//! location. If the wrong-path transmitter load left the probe line in the
//! non-speculative cache hierarchy, the attacker recovers the secret; under
//! MuonTrap the line only ever lived in the victim's filter cache, which was
//! flushed on the context switch, and the attacker learns nothing.

use simkit::addr::VirtAddr;
use simkit::config::SystemConfig;

use defenses::DefenseKind;
use simsys::System;
use uarch_isa::inst::MemWidth;
use uarch_isa::prog::{Program, ProgramBuilder};
use uarch_isa::reg::Reg;

use crate::AttackOutcome;

/// Number of distinct probe lines (and therefore representable secret values).
pub const PROBE_LINES: u64 = 16;

/// Virtual address of the shared probe array (page-aligned) in both processes.
const PROBE_VA: u64 = 0x0020_0000;

/// Physical page number backing the shared probe array.
const PROBE_SHARED_PPN: u64 = 0x9_0000;

/// Victim-private addresses.
const VICTIM_ARRAY_VA: u64 = 0x0030_0000; // the in-bounds array
const VICTIM_SIZE_VA: u64 = 0x0034_0000; // bounds variable, kept cold
const VICTIM_SECRET_VA: u64 = 0x0030_0800; // the secret byte, out of bounds of the array

/// Attacker-private addresses.
const ATTACKER_RESULT_VA: u64 = 0x0040_0000; // where the attacker writes its guess
const ATTACKER_LAT_BASE_VA: u64 = 0x0040_1000; // per-line latencies, for diagnostics

/// Result of one full prime-and-probe run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectreOutcome {
    /// The secret value planted in the victim.
    pub secret: u64,
    /// The value the attacker recovered.
    pub recovered: u64,
    /// Measured latency of each probe line, in cycles.
    pub probe_latencies: Vec<u64>,
    /// Whether the recovered value matches the secret *and* the timing signal
    /// was unambiguous (the recovered line is clearly faster than the rest).
    pub leaked: bool,
}

/// Builds the victim program: train the bounds check, warm the secret, then
/// perform one malicious (out-of-bounds) invocation of the gadget.
///
/// Public so static tooling (`speclint`) can analyze the very program the
/// dynamic attack executes: the gadget body here is the ground-truth
/// `v1-load` the cross-validation tests pin.
pub fn victim_program(secret: u64, training_rounds: u64) -> Program {
    assert!(secret < PROBE_LINES, "secret must index a probe line");
    let mut b = ProgramBuilder::new("spectre-victim");
    // In-bounds array: 16 elements, one byte each (values irrelevant).
    b.data(VirtAddr::new(VICTIM_ARRAY_VA), vec![1u8; 16]);
    // The array bound. Placed far from everything else so the load of it
    // misses and the bounds-check branch resolves late.
    b.data_u64(VirtAddr::new(VICTIM_SIZE_VA), &[16]);
    // The secret byte, outside the array but at a fixed offset from it.
    b.data(VirtAddr::new(VICTIM_SECRET_VA), vec![secret as u8]);

    let gadget = b.new_label();
    let done_training = b.new_label();

    // x15 = loop counter, x16 = index argument for the gadget.
    b.li(Reg::X15, 0);
    // Warm the secret line so the transmitter issues quickly on the wrong path
    // (the victim legitimately uses its secret).
    b.li(Reg::X20, VICTIM_SECRET_VA);
    b.load_byte(Reg::X21, Reg::X20, 0);

    // Training loop: call the gadget with an in-bounds index.
    let train_top = b.here();
    b.andi(Reg::X16, Reg::X15, 7); // idx in 0..8: always in bounds
    b.call(gadget, Reg::X30);
    b.addi(Reg::X15, Reg::X15, 1);
    b.blt_imm(Reg::X15, training_rounds, train_top);
    b.jump(done_training);

    // ---- the gadget --------------------------------------------------
    // x16 = idx. Loads size (cold), bounds-checks, then on the in-bounds path
    // loads array[idx] and probe[array[idx] * 64].
    b.bind_label(gadget);
    let out_of_bounds = b.new_label();
    b.li(Reg::X1, VICTIM_SIZE_VA);
    b.load(Reg::X2, Reg::X1, 0); // size (cold on the malicious call)
    b.bgeu(Reg::X16, Reg::X2, out_of_bounds);
    // In-bounds (and wrong-path on the malicious call):
    b.li(Reg::X3, VICTIM_ARRAY_VA);
    b.add(Reg::X3, Reg::X3, Reg::X16);
    b.load_byte(Reg::X4, Reg::X3, 0); // array[idx] — the secret on the malicious call
    b.shli(Reg::X4, Reg::X4, 6); // * 64 (one cache line per value)
    b.li(Reg::X5, PROBE_VA);
    b.add(Reg::X5, Reg::X5, Reg::X4);
    b.load_byte(Reg::X6, Reg::X5, 0); // the transmitter
    b.bind_label(out_of_bounds);
    b.ret(Reg::X30);
    // -------------------------------------------------------------------

    b.bind_label(done_training);
    // Evict the size variable's line from the L1 by streaming a large dummy
    // region over it, so the malicious call's bounds check resolves slowly and
    // the speculation window is wide. (A real attacker arranges the same
    // thing; here the victim's ordinary working set does it for us.)
    b.li(Reg::X22, VICTIM_ARRAY_VA + 0x8000);
    b.li(Reg::X23, 0);
    let evict_top = b.here();
    b.shli(Reg::X24, Reg::X23, 6);
    b.add(Reg::X24, Reg::X22, Reg::X24);
    b.load(Reg::X25, Reg::X24, 0);
    b.addi(Reg::X23, Reg::X23, 1);
    b.blt_imm(Reg::X23, 2048, evict_top);

    // Re-warm the secret and the in-bounds array base (the victim legitimately
    // uses both), so the wrong-path transmitter can issue inside the window
    // opened by the slow bounds load.
    b.li(Reg::X20, VICTIM_SECRET_VA);
    b.load_byte(Reg::X21, Reg::X20, 0);

    // The malicious call: idx chosen so that array + idx == secret address.
    b.li(Reg::X16, VICTIM_SECRET_VA - VICTIM_ARRAY_VA);
    b.call(gadget, Reg::X30);
    b.halt();
    b.build().expect("victim program builds")
}

/// Builds the attacker program: time a load of each candidate probe line and
/// record the index of the fastest.
///
/// Two standard attacker tricks are used so the cache signal is clean:
/// the probe lines are visited in a permuted (non-unit-stride) order so the
/// attacker's own accesses do not train the stride prefetcher, and the probed
/// address is made data-dependent on the first `rdcycle` so the load cannot
/// issue before the timestamp is taken. Lines 0 and 1 are excluded because the
/// attacker itself chose the in-bounds training inputs that touch them.
///
/// Public so static tooling can confirm the attacker side carries no gadget:
/// every address it accesses derives from immediates and `rdcycle`, never
/// from a speculatively loaded value.
pub fn attacker_program() -> Program {
    let mut b = ProgramBuilder::new("spectre-attacker");
    b.data_u64(VirtAddr::new(ATTACKER_RESULT_VA), &[u64::MAX]);

    // Warm the data TLB entry and the DRAM row for the probe page by touching
    // a line in the same page that is outside the 16 candidate lines.
    b.li(Reg::X5, PROBE_VA + PROBE_LINES * 64);
    b.load(Reg::X6, Reg::X5, 0);

    // x1 = loop counter, x2 = best latency so far, x3 = best index so far.
    b.li(Reg::X1, 0);
    b.li(Reg::X2, u64::MAX);
    b.li(Reg::X3, 0);
    let loop_top = b.here();
    // Visit lines 2..=15 in the order 2 + (k*5 mod 14): 5 is coprime with 14,
    // so every candidate line is probed exactly once, never at unit stride.
    b.li(Reg::X14, 5);
    b.mul(Reg::X15, Reg::X1, Reg::X14);
    b.remi(Reg::X15, Reg::X15, 14);
    b.addi(Reg::X15, Reg::X15, 2); // x15 = probe line index
                                   // addr = PROBE_VA + line * 64
    b.shli(Reg::X4, Reg::X15, 6);
    b.li(Reg::X5, PROBE_VA);
    b.add(Reg::X4, Reg::X5, Reg::X4);
    // t0 = rdcycle; make the probed address depend on t0 (adding zero) so the
    // load cannot hoist above the timestamp; load; t1 = rdcycle.
    b.rdcycle(Reg::X6);
    b.shri(Reg::X13, Reg::X6, 62); // always zero for realistic cycle counts
    b.add(Reg::X4, Reg::X4, Reg::X13);
    b.load_byte(Reg::X7, Reg::X4, 0);
    // Make the second timestamp depend on the loaded value having arrived.
    b.add(Reg::X8, Reg::X7, Reg::X0);
    b.rdcycle(Reg::X9);
    b.sub(Reg::X10, Reg::X9, Reg::X6);
    // Record the latency for diagnostics: lat[line] at ATTACKER_LAT_BASE_VA.
    b.shli(Reg::X11, Reg::X15, 3);
    b.li(Reg::X12, ATTACKER_LAT_BASE_VA);
    b.add(Reg::X12, Reg::X12, Reg::X11);
    b.store(Reg::X10, Reg::X12, 0);
    // best = min(best, lat)
    let not_better = b.new_label();
    b.bgeu(Reg::X10, Reg::X2, not_better);
    b.add(Reg::X2, Reg::X10, Reg::X0);
    b.add(Reg::X3, Reg::X15, Reg::X0);
    b.bind_label(not_better);
    b.addi(Reg::X1, Reg::X1, 1);
    b.blt_imm(Reg::X1, PROBE_LINES - 2, loop_top);
    // Publish the guess.
    b.li(Reg::X13, ATTACKER_RESULT_VA);
    b.store(Reg::X3, Reg::X13, 0);
    b.halt();
    b.build().expect("attacker program builds")
}

/// Runs the full prime-and-probe attack against `kind` with a given planted
/// secret, on a single-core machine so the attacker reuses the victim's core.
pub fn spectre_prime_probe_with_secret(
    kind: DefenseKind,
    config: &SystemConfig,
    secret: u64,
) -> SpectreOutcome {
    let mut cfg = config.clone();
    cfg.cores = 1;
    // A long quantum so the victim finishes before any preemption: the
    // interesting domain switch is the natural one when the victim halts and
    // the attacker is scheduled.
    cfg.scheduler_quantum = 10_000_000;

    let memory_model = defenses::build_defense(kind, &cfg);
    let mut system = System::new(&cfg, memory_model);

    let victim_pid = system.add_process();
    let attacker_pid = system.add_process();
    // Share the probe page(s) between the two processes.
    let probe_vpn = PROBE_VA / cfg.tlb.page_bytes;
    system.map_shared_page(&[victim_pid, attacker_pid], probe_vpn, PROBE_SHARED_PPN);

    system.add_thread(victim_pid, victim_program(secret, 24));
    system.add_thread(attacker_pid, attacker_program());

    let report = system.run(20_000_000);
    assert!(report.completed, "attack scenario did not finish");

    let attacker_memory = system
        .process_memory(attacker_pid)
        .expect("attacker has memory");
    let memory = attacker_memory.borrow();
    let recovered = memory.read(VirtAddr::new(ATTACKER_RESULT_VA), MemWidth::Double);
    let probe_latencies: Vec<u64> = (0..PROBE_LINES)
        .map(|i| {
            memory.read(
                VirtAddr::new(ATTACKER_LAT_BASE_VA + i * 8),
                MemWidth::Double,
            )
        })
        .collect();
    drop(memory);

    // The leak is judged on the timing signal itself: the recovered line must
    // match the secret and be decisively faster than the median probed line.
    // Lines 0 and 1 are excluded: the attacker's own training inputs touch
    // them, so it never probes them (see `attacker_program`).
    let mut sorted: Vec<u64> = probe_latencies[2..].to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let best = probe_latencies
        .get(recovered as usize)
        .copied()
        .unwrap_or(u64::MAX);
    let decisive = best + 20 < median;
    SpectreOutcome {
        secret,
        recovered,
        probe_latencies,
        leaked: recovered == secret && decisive,
    }
}

/// Runs the attack for several distinct secrets and reports whether the
/// attacker reliably recovered them.
pub fn spectre_prime_probe(kind: DefenseKind, config: &SystemConfig) -> AttackOutcome {
    let secrets = [3u64, 11, 6, 14];
    let outcomes: Vec<SpectreOutcome> = secrets
        .iter()
        .map(|s| spectre_prime_probe_with_secret(kind, config, *s))
        .collect();
    let leaks = outcomes.iter().filter(|o| o.leaked).count();
    let leaked = leaks >= 3; // reliable extraction, not a lucky guess
    let detail = outcomes
        .iter()
        .map(|o| {
            format!(
                "secret {} -> recovered {} (leaked: {})",
                o.secret, o.recovered, o.leaked
            )
        })
        .collect::<Vec<_>>()
        .join("; ");
    AttackOutcome::new(
        "attack 1: spectre prime+probe",
        kind.label(),
        leaked,
        detail,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SystemConfig {
        SystemConfig::paper_default()
    }

    #[test]
    fn victim_and_attacker_programs_build() {
        assert!(victim_program(5, 8).len() > 20);
        assert!(attacker_program().len() > 20);
    }

    #[test]
    fn unprotected_system_leaks_the_secret() {
        let outcome = spectre_prime_probe_with_secret(DefenseKind::Unprotected, &config(), 9);
        assert_eq!(
            outcome.recovered, 9,
            "unprotected system should leak; latencies: {:?}",
            outcome.probe_latencies
        );
        assert!(outcome.leaked);
    }

    #[test]
    fn muontrap_blocks_the_leak() {
        // With MuonTrap the speculative probe line never reaches the
        // non-speculative hierarchy and the filter cache is flushed on the
        // context switch to the attacker, so the timing signal is gone.
        let outcome = spectre_prime_probe_with_secret(DefenseKind::MuonTrap, &config(), 9);
        assert!(
            !outcome.leaked,
            "MuonTrap must not leak; recovered {} latencies {:?}",
            outcome.recovered, outcome.probe_latencies
        );
    }

    #[test]
    fn insecure_l0_still_leaks() {
        // The L0 alone (without MuonTrap's protections) provides no isolation:
        // speculative fills propagate to the L1/L2 as usual.
        let outcome = spectre_prime_probe_with_secret(DefenseKind::InsecureL0, &config(), 4);
        assert!(outcome.leaked, "an insecure L0 is not a defense");
    }
}
