//! µISA embodiments of the attack suite for static analysis.
//!
//! The dynamic litmus tests for attacks 2–6 ([`crate::litmus`]) drive the
//! memory models directly — there is no µISA program for a static analyzer to
//! inspect. This module closes that gap: for each litmus attack it provides
//! the *program shape* an attacker would run to mount it — a guarded
//! speculative window whose wrong path turns a speculatively loaded secret
//! into the access pattern the litmus test checks — plus a `-fenced` twin
//! with a speculation barrier closing the window, which must analyze clean.
//!
//! The corpus also registers the real Spectre victim and attacker programs
//! from [`crate::spectre`], so the flagship end-to-end attack is
//! cross-validated against the exact code it executes.
//!
//! Every entry records whether `speclint` is expected to find a gadget and,
//! where applicable, the dynamic [`AttackOutcome`](crate::AttackOutcome)
//! attack name it corresponds to; `tests/speclint_cross.rs` joins the two
//! views on that name.

use simkit::addr::VirtAddr;

use uarch_isa::prog::{Program, ProgramBuilder};
use uarch_isa::reg::Reg;

use crate::spectre;

/// Private addresses used by the litmus embodiments. Values only matter for
/// `Program::validate` (segments must not overlap); the programs are analyzed,
/// not timed.
const SIZE_VA: u64 = 0x0005_0000;
const ARRAY_VA: u64 = 0x0005_1000;
const CONFLICT_VA: u64 = 0x0006_0000;
const SHARED_VA: u64 = 0x0007_0000;
const STREAM_VA: u64 = 0x0008_0000;

/// One corpus entry: a program plus its expected static verdict.
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// The program to analyze.
    pub program: Program,
    /// Whether the static analyzer is expected to flag at least one gadget.
    pub expect_gadget: bool,
    /// The dynamic attack (an [`AttackOutcome::attack`](crate::AttackOutcome)
    /// name) this program is the static embodiment of, if any.
    pub litmus_attack: Option<&'static str>,
    /// One-line description for reports.
    pub note: &'static str,
}

/// Emits the shared prologue: a cold-ish size load and the bounds check that
/// opens the speculative window, returning the `done` label bound later.
/// `idx` ends up in `X10`; the fall-through path is the wrong path.
fn guarded_window(b: &mut ProgramBuilder, fenced: bool) -> uarch_isa::prog::Label {
    b.data_u64(VirtAddr::new(SIZE_VA), &[16]);
    b.data(VirtAddr::new(ARRAY_VA), vec![1u8; 16]);
    let done = b.new_label();
    b.li(Reg::X10, 4096); // deliberately out-of-bounds index
    b.li(Reg::X1, SIZE_VA);
    b.load(Reg::X2, Reg::X1, 0); // bound: resolves slowly when cold
    b.bgeu(Reg::X10, Reg::X2, done); // architecturally always taken
    if fenced {
        // The taken side lands directly on the final halt, so one barrier on
        // the fall-through closes every window this branch can open.
        b.spec_barrier();
    }
    done
}

/// Emits the speculative secret read `X4 <- array[X10]` inside the window.
fn speculative_secret(b: &mut ProgramBuilder) {
    b.li(Reg::X3, ARRAY_VA);
    b.add(Reg::X3, Reg::X3, Reg::X10);
    b.load_byte(Reg::X4, Reg::X3, 0); // out-of-bounds: the secret
}

/// Attack 2 shape: the secret picks which line of a conflict set is filled,
/// evicting a victim line from the shared cache (inclusion-policy channel).
fn litmus_inclusion(fenced: bool) -> Program {
    let name = if fenced {
        "litmus-inclusion-fenced"
    } else {
        "litmus-inclusion"
    };
    let mut b = ProgramBuilder::new(name);
    let done = guarded_window(&mut b, fenced);
    speculative_secret(&mut b);
    b.shli(Reg::X4, Reg::X4, 6); // one conflict-set line per secret value
    b.li(Reg::X5, CONFLICT_VA);
    b.add(Reg::X5, Reg::X5, Reg::X4);
    b.load(Reg::X6, Reg::X5, 0); // v1-load: secret-selected eviction
    b.bind_label(done);
    b.halt();
    b.build().expect("litmus-inclusion builds")
}

/// Attack 3 shape: the secret picks the *address* of a speculative store to a
/// shared line; the ownership upgrade is visible to a coherent observer even
/// though the store data never commits.
fn litmus_coherence(fenced: bool) -> Program {
    let name = if fenced {
        "litmus-coherence-fenced"
    } else {
        "litmus-coherence"
    };
    let mut b = ProgramBuilder::new(name);
    let done = guarded_window(&mut b, fenced);
    speculative_secret(&mut b);
    b.shli(Reg::X4, Reg::X4, 6);
    b.li(Reg::X5, SHARED_VA);
    b.add(Reg::X5, Reg::X5, Reg::X4);
    b.store(Reg::X0, Reg::X5, 0); // tainted-store-address: coherence upgrade
    b.bind_label(done);
    b.halt();
    b.build().expect("litmus-coherence builds")
}

/// Attack 4 shape: same secret-selected fill, landing in the filter cache —
/// the litmus test then asks whether the filter's timing reveals it.
fn litmus_filter(fenced: bool) -> Program {
    let name = if fenced {
        "litmus-filter-fenced"
    } else {
        "litmus-filter"
    };
    let mut b = ProgramBuilder::new(name);
    let done = guarded_window(&mut b, fenced);
    speculative_secret(&mut b);
    b.shli(Reg::X4, Reg::X4, 6);
    b.li(Reg::X5, CONFLICT_VA);
    b.add(Reg::X5, Reg::X5, Reg::X4);
    b.load_byte(Reg::X6, Reg::X5, 0); // v1-load: secret-selected filter fill
    b.bind_label(done);
    b.halt();
    b.build().expect("litmus-filter builds")
}

/// Attack 5 shape: the secret picks the base of a short sequential stream,
/// training the stride prefetcher on a secret-dependent region.
fn litmus_prefetch(fenced: bool) -> Program {
    let name = if fenced {
        "litmus-prefetch-fenced"
    } else {
        "litmus-prefetch"
    };
    let mut b = ProgramBuilder::new(name);
    let done = guarded_window(&mut b, fenced);
    speculative_secret(&mut b);
    b.shli(Reg::X4, Reg::X4, 12); // one page per secret value
    b.li(Reg::X5, STREAM_VA);
    b.add(Reg::X5, Reg::X5, Reg::X4);
    b.load(Reg::X6, Reg::X5, 0); // v1-loads: a unit-stride stream whose
    b.load(Reg::X6, Reg::X5, 64); // base the prefetcher learns
    b.load(Reg::X6, Reg::X5, 128);
    b.bind_label(done);
    b.halt();
    b.build().expect("litmus-prefetch builds")
}

/// Attack 6 shape: a branch steered by the speculative secret — the two
/// fetch paths touch different instruction lines, so the I-cache transmits.
fn litmus_icache(fenced: bool) -> Program {
    let name = if fenced {
        "litmus-icache-fenced"
    } else {
        "litmus-icache"
    };
    let mut b = ProgramBuilder::new(name);
    let done = guarded_window(&mut b, fenced);
    speculative_secret(&mut b);
    let bit_set = b.new_label();
    b.andi(Reg::X4, Reg::X4, 1);
    b.bne(Reg::X4, Reg::X0, bit_set); // tainted-branch: fetch reveals the bit
    b.nop();
    b.nop();
    b.bind_label(bit_set);
    b.nop();
    b.bind_label(done);
    b.halt();
    b.build().expect("litmus-icache builds")
}

/// The full static attack corpus: the Spectre pair plus a gadget-bearing and
/// a fenced embodiment of each litmus attack.
pub fn attack_corpus() -> Vec<CorpusProgram> {
    let mut corpus = vec![
        CorpusProgram {
            program: spectre::victim_program(9, 24),
            expect_gadget: true,
            litmus_attack: Some("attack 1: spectre prime+probe"),
            note: "the end-to-end Spectre victim: its gadget body is the leak",
        },
        CorpusProgram {
            program: spectre::attacker_program(),
            expect_gadget: false,
            litmus_attack: None,
            note: "the Spectre attacker: times lines, carries no gadget itself",
        },
    ];
    // (builder, attack name, gadget-variant note, fenced-variant note)
    type LitmusEntry = (
        fn(bool) -> Program,
        &'static str,
        &'static str,
        &'static str,
    );
    let litmus: [LitmusEntry; 5] = [
        (
            litmus_inclusion,
            "attack 2: inclusion policy",
            "secret-selected conflict-set fill evicts a victim line",
            "the same window closed by a speculation barrier",
        ),
        (
            litmus_coherence,
            "attack 3: shared-data coherence",
            "speculative store address requests secret-selected ownership",
            "the same window closed by a speculation barrier",
        ),
        (
            litmus_filter,
            "attack 4: filter-cache coherence",
            "secret-selected fill lands in the filter cache",
            "the same window closed by a speculation barrier",
        ),
        (
            litmus_prefetch,
            "attack 5: prefetcher",
            "secret-selected stream base trains the prefetcher",
            "the same window closed by a speculation barrier",
        ),
        (
            litmus_icache,
            "attack 6: instruction cache",
            "secret-steered branch: the fetch path transmits",
            "the same window closed by a speculation barrier",
        ),
    ];
    for (build, attack, gadget_note, fenced_note) in litmus {
        corpus.push(CorpusProgram {
            program: build(false),
            expect_gadget: true,
            litmus_attack: Some(attack),
            note: gadget_note,
        });
        corpus.push(CorpusProgram {
            program: build(true),
            expect_gadget: false,
            litmus_attack: None,
            note: fenced_note,
        });
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn corpus_programs_build_and_validate() {
        for entry in attack_corpus() {
            assert_eq!(
                entry.program.validate(),
                Ok(()),
                "{} must validate",
                entry.program.name()
            );
            assert!(!entry.note.is_empty());
        }
    }

    #[test]
    fn corpus_names_are_unique_and_paired() {
        let corpus = attack_corpus();
        let names: HashSet<&str> = corpus.iter().map(|e| e.program.name()).collect();
        assert_eq!(names.len(), corpus.len(), "duplicate program names");
        for entry in &corpus {
            let name = entry.program.name();
            if let Some(base) = name.strip_suffix("-fenced") {
                assert!(
                    names.contains(base),
                    "fenced variant {name} has no unfenced twin"
                );
                assert!(!entry.expect_gadget, "{name} must be clean");
            }
        }
    }

    #[test]
    fn gadget_expectations_join_the_dynamic_attack_names() {
        // Every gadget-bearing litmus embodiment names the dynamic attack it
        // models, and each of the paper's six attacks appears exactly once.
        let corpus = attack_corpus();
        let attacks: Vec<&str> = corpus.iter().filter_map(|e| e.litmus_attack).collect();
        assert_eq!(attacks.len(), 6);
        for n in 1..=6 {
            assert_eq!(
                attacks
                    .iter()
                    .filter(|a| a.starts_with(&format!("attack {n}:")))
                    .count(),
                1,
                "attack {n} must appear exactly once"
            );
        }
        for entry in &corpus {
            if entry.litmus_attack.is_some() {
                assert!(entry.expect_gadget, "{}", entry.program.name());
            }
        }
    }

    #[test]
    fn fenced_variants_only_add_barriers() {
        use uarch_isa::inst::Instruction;
        let corpus = attack_corpus();
        for entry in &corpus {
            let name = entry.program.name();
            let Some(base) = name.strip_suffix("-fenced") else {
                continue;
            };
            let twin = corpus
                .iter()
                .find(|e| e.program.name() == base)
                .expect("twin exists");
            let barriers = entry
                .program
                .iter()
                .filter(|i| matches!(i, Instruction::SpecBarrier))
                .count();
            assert!(barriers > 0, "{name} has no barrier");
            assert_eq!(
                entry.program.len(),
                twin.program.len() + barriers,
                "{name} must differ from {base} only by its barriers"
            );
        }
    }
}
