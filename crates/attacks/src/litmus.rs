//! Targeted litmus tests for Attacks 2–6 of the paper.
//!
//! Each function drives the memory models directly (rather than running full
//! programs) and checks the specific observable the attack relies on. The
//! return value is `true` when the attacker-visible signal exists — i.e. the
//! configuration *leaks* — so the integration tests can assert the baseline
//! leaks and MuonTrap does not.

use simkit::addr::VirtAddr;
use simkit::config::SystemConfig;
use simkit::cycles::Cycle;

use defenses::{build_defense, DefenseKind};
use memsys::tlb::PageTable;
use ooo_core::memmodel::{MemAccessCtx, MemOutcome, MemoryModel};

use crate::AttackOutcome;

/// Builds the memory model for `kind` with all cores sharing one address space
/// (attacker and victim sharing memory, as the coherence attacks require).
fn shared_address_space_model(kind: DefenseKind, config: &SystemConfig) -> Box<dyn MemoryModel> {
    let mut model = build_defense(kind, config);
    for core in 0..config.cores {
        model.set_page_table(core, PageTable::new(config.tlb.page_bytes, 0));
    }
    model
}

fn ctx(core: usize, vaddr: u64, speculative: bool, is_store: bool, when: u64) -> MemAccessCtx {
    MemAccessCtx {
        core,
        vaddr: VirtAddr::new(vaddr),
        pc: VirtAddr::new(0x40_0000),
        when: Cycle::new(when),
        speculative,
        is_store,
        under_unresolved_branch: speculative,
        addr_tainted_spectre: false,
        addr_tainted_future: false,
    }
}

/// Times a non-speculative load of `vaddr` on `core`. A different line in the
/// same page is touched first so that the measurement is not polluted by
/// TLB-walk latency or DRAM row-buffer state — the litmus tests are about
/// *cache* channels, which is what the paper defends, and real attackers also
/// warm those structures before measuring.
fn probe_latency(model: &mut Box<dyn MemoryModel>, core: usize, vaddr: u64, when: u64) -> u64 {
    let warm = vaddr ^ 0x800; // same 4 KiB page, different cache line
    let _ = model.load(&ctx(core, warm, false, false, when));
    match model.load(&ctx(core, vaddr, false, false, when + 500)) {
        MemOutcome::Done { latency } => latency,
        MemOutcome::RetryWhenNonSpeculative => u64::MAX,
    }
}

/// Attack 2 — inclusion-policy attack.
///
/// The victim's speculative accesses must not evict the attacker's data from
/// the non-speculative caches (which would let the attacker infer the
/// speculative access from its own later miss). The litmus primes a set of
/// lines non-speculatively, streams a large set of *speculative* accesses that
/// conflict with them, and then re-times the primed lines. A slow re-access
/// means speculation evicted them: the configuration leaks.
pub fn inclusion_attack_leaks(kind: DefenseKind, config: &SystemConfig) -> bool {
    let mut model = shared_address_space_model(kind, config);
    let line_bytes = config.line_bytes;
    // Prime: bring a small set of lines in non-speculatively (commit them).
    let primed: Vec<u64> = (0..16u64).map(|i| 0x10_0000 + i * line_bytes).collect();
    for (i, addr) in primed.iter().enumerate() {
        let _ = model.load(&ctx(0, *addr, false, false, i as u64));
        let _ = model.commit_access(&ctx(0, *addr, false, false, i as u64));
    }
    // Speculate: a large conflicting stream that is never committed.
    for i in 0..4096u64 {
        let addr = 0x20_0000 + i * line_bytes;
        let _ = model.load(&ctx(0, addr, true, false, 1_000 + i));
    }
    // Probe: if any primed line now misses badly, speculation displaced it.
    let mut evicted = 0;
    for (i, addr) in primed.iter().enumerate() {
        let latency = probe_latency(&mut model, 0, *addr, 100_000 + i as u64);
        if latency > config.l2.hit_latency + config.l1d.hit_latency {
            evicted += 1;
        }
    }
    evicted >= 4
}

/// Attack 3 — shared-data coherence attack.
///
/// The attacker holds shared data exclusively (it just wrote it). A victim
/// speculative load that downgrades the attacker's line makes the attacker's
/// *next* store measurably slower (it must re-acquire ownership). The litmus
/// measures exactly that store-after-speculation penalty.
pub fn coherence_attack_leaks(kind: DefenseKind, config: &SystemConfig) -> bool {
    let shared = 0x30_0000u64;
    // The attacker's second store is issued as a non-speculative exclusive
    // access (the same path an atomic at the head of the ROB takes), so its
    // latency reflects whether ownership had to be re-acquired.
    let second_store = |model: &mut Box<dyn MemoryModel>| -> u64 {
        model
            .load(&ctx(0, shared, false, true, 2_000))
            .latency()
            .unwrap_or(u64::MAX)
    };

    // Reference timing: attacker writes twice with no victim activity.
    let mut model = shared_address_space_model(kind, config);
    let _ = model.commit_access(&ctx(0, shared, false, true, 10));
    let baseline_second_store = second_store(&mut model);

    // Attacked timing: the victim (core 1) speculatively loads the shared line
    // between the attacker's two stores.
    let mut model = shared_address_space_model(kind, config);
    let _ = model.commit_access(&ctx(0, shared, false, true, 10));
    let _ = model.load(&ctx(1, shared, true, false, 1_000));
    let attacked_second_store = second_store(&mut model);

    attacked_second_store > baseline_second_store
}

/// Attack 4 — filter-cache coherence attack.
///
/// One victim core's *speculative* (filter-cache) copy of a line must not make
/// another core's access to that line observably different. The litmus times
/// an attacker load of a line (a) when no one else has touched it and (b) when
/// the victim core has it speculatively; a timing difference leaks the
/// victim's speculative access.
pub fn filter_timing_attack_leaks(kind: DefenseKind, config: &SystemConfig) -> bool {
    let target = 0x40_0000u64;

    // (a) nobody has touched the line.
    let mut model = shared_address_space_model(kind, config);
    let untouched = probe_latency(&mut model, 0, target, 1_000);

    // (b) the victim (core 1) loaded it speculatively first.
    let mut model = shared_address_space_model(kind, config);
    let _ = model.load(&ctx(1, target, true, false, 10));
    let after_victim = probe_latency(&mut model, 0, target, 1_000);

    // Any measurable difference (beyond DRAM row-buffer noise) is a channel.
    untouched.abs_diff(after_victim) > config.l2.hit_latency
}

/// Attack 5 — prefetcher attack.
///
/// The victim's speculative streaming accesses must not train the prefetcher
/// into fetching the *next* line into the non-speculative hierarchy, because
/// the attacker can then time that line. The litmus streams speculatively from
/// one PC and checks whether the following line became an L2 hit.
pub fn prefetch_attack_leaks(kind: DefenseKind, config: &SystemConfig) -> bool {
    let mut model = shared_address_space_model(kind, config);
    let line_bytes = config.line_bytes;
    let base = 0x50_0000u64;
    let pc = 0x40_2000u64;
    // Speculative unit-stride stream from a single PC (never committed).
    for i in 0..12u64 {
        let mut c = ctx(1, base + i * line_bytes, true, false, 10 + i);
        c.pc = VirtAddr::new(pc);
        let _ = model.load(&c);
    }
    // The attacker times the next line in the stream from another core. If the
    // prefetcher was trained speculatively, the line is already in the L2 and
    // the access is fast (an L1+L2 hit path, with a little slack for the
    // filter-cache lookup and TLB hit of the protected configurations).
    let next = base + 12 * line_bytes;
    let latency = probe_latency(&mut model, 0, next, 10_000);
    latency <= config.l2.hit_latency + config.l1d.hit_latency + config.data_filter.hit_latency + 2
}

/// Attack 6 — instruction-cache attack.
///
/// A victim tricked into a speculative, secret-dependent jump leaves the
/// target's instruction-cache line behind; the attacker then times instruction
/// fetches from the shared code region. The litmus performs a speculative
/// instruction fetch on the victim core and checks whether the attacker core's
/// fetch of the same line got faster.
pub fn icache_attack_leaks(kind: DefenseKind, config: &SystemConfig) -> bool {
    let code_va = 0x41_0000u64;
    // Like `probe_latency`, warm the instruction TLB and the DRAM row with a
    // different line in the same page before timing, so the only signal left
    // is cache state.
    let timed_fetch = |model: &mut Box<dyn MemoryModel>| -> u64 {
        let _ = model.fetch_instruction(&ctx(0, code_va ^ 0x800, false, false, 900));
        model
            .fetch_instruction(&ctx(0, code_va, false, false, 1_500))
            .latency()
            .unwrap_or(u64::MAX)
    };

    // (a) attacker fetch with no victim activity.
    let mut model = shared_address_space_model(kind, config);
    let cold = timed_fetch(&mut model);

    // (b) attacker fetch after the victim speculatively fetched the same line.
    // The leak path is through the shared L2: the victim's speculative fetch
    // installs the line there, and the attacker's fetch then hits.
    let mut model = shared_address_space_model(kind, config);
    let _ = model.fetch_instruction(&ctx(1, code_va, true, false, 10));
    let after_victim = timed_fetch(&mut model);

    after_victim + config.l2.hit_latency <= cold
}

/// Runs attacks 2–6 against `kind` and returns one outcome per attack.
pub fn run_litmus_suite(kind: DefenseKind, config: &SystemConfig) -> Vec<AttackOutcome> {
    vec![
        AttackOutcome::new(
            "attack 2: inclusion policy",
            kind.label(),
            inclusion_attack_leaks(kind, config),
            "speculative conflicting stream evicts primed non-speculative lines",
        ),
        AttackOutcome::new(
            "attack 3: shared-data coherence",
            kind.label(),
            coherence_attack_leaks(kind, config),
            "victim speculative load slows the attacker's next store",
        ),
        AttackOutcome::new(
            "attack 4: filter-cache coherence",
            kind.label(),
            filter_timing_attack_leaks(kind, config),
            "victim speculative copy changes attacker access timing",
        ),
        AttackOutcome::new(
            "attack 5: prefetcher",
            kind.label(),
            prefetch_attack_leaks(kind, config),
            "speculative stream trains the prefetcher into visible fills",
        ),
        AttackOutcome::new(
            "attack 6: instruction cache",
            kind.label(),
            icache_attack_leaks(kind, config),
            "speculative instruction fetch visible to another core",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_default()
    }

    #[test]
    fn inclusion_attack_distinguishes_baseline_from_muontrap() {
        assert!(inclusion_attack_leaks(DefenseKind::Unprotected, &cfg()));
        assert!(!inclusion_attack_leaks(DefenseKind::MuonTrap, &cfg()));
    }

    #[test]
    fn coherence_attack_distinguishes_baseline_from_muontrap() {
        assert!(coherence_attack_leaks(DefenseKind::Unprotected, &cfg()));
        assert!(!coherence_attack_leaks(DefenseKind::MuonTrap, &cfg()));
    }

    #[test]
    fn filter_timing_attack_never_leaks_under_muontrap() {
        assert!(!filter_timing_attack_leaks(DefenseKind::MuonTrap, &cfg()));
    }

    #[test]
    fn prefetch_attack_distinguishes_baseline_from_muontrap() {
        assert!(prefetch_attack_leaks(DefenseKind::Unprotected, &cfg()));
        assert!(!prefetch_attack_leaks(DefenseKind::MuonTrap, &cfg()));
    }

    #[test]
    fn icache_attack_distinguishes_baseline_from_muontrap() {
        assert!(icache_attack_leaks(DefenseKind::Unprotected, &cfg()));
        assert!(!icache_attack_leaks(DefenseKind::MuonTrap, &cfg()));
    }

    #[test]
    fn litmus_suite_reports_all_five_attacks() {
        let outcomes = run_litmus_suite(DefenseKind::MuonTrap, &cfg());
        assert_eq!(outcomes.len(), 5);
        assert!(
            outcomes.iter().all(|o| !o.leaked),
            "MuonTrap must stop attacks 2-6: {outcomes:?}"
        );
    }
}
