//! Security litmus tests: the speculative side-channel attacks the paper
//! defends against, run end-to-end against each memory-system configuration.
//!
//! The paper motivates each MuonTrap mechanism with an attack (its Attacks
//! 1–6): the original Spectre prime-and-probe, an inclusion-policy attack, a
//! shared-data coherence attack, a filter-cache coherence attack, a
//! prefetcher attack and an instruction-cache attack. This crate implements
//! each of them against the real simulated machine:
//!
//! * [`spectre`] — the flagship end-to-end attack: a victim *process* runs a
//!   genuine Spectre-v1 gadget (trained bounds-check branch, speculative
//!   secret load, secret-dependent load into a shared probe array), the
//!   attacker process is then scheduled onto the same core and times the probe
//!   lines with `rdcycle` to recover the secret. Whether the secret survives
//!   the context switch is precisely what MuonTrap changes.
//! * [`litmus`] — targeted litmus tests for attacks 2–6, driving the memory
//!   models directly and checking the specific invariant each protection
//!   mechanism establishes (no speculative eviction of non-speculative state,
//!   no speculative coherence downgrades, timing-invariant filter caches, no
//!   speculative prefetcher training, no speculative instruction-cache fills).
//!
//! Every function reports an [`AttackOutcome`]; the integration tests assert
//! that each attack *succeeds* against the unprotected baseline and *fails*
//! against MuonTrap, which is the security claim of the paper in executable
//! form.
//!
//! For static tooling, [`corpus`] packages the attack suite as µISA programs:
//! the real Spectre pair plus a gadget-bearing embodiment of each litmus
//! attack (and a fenced clean twin), so `speclint` can be cross-validated
//! against the dynamic outcomes program by program.

#![forbid(unsafe_code)]

pub mod corpus;
pub mod litmus;
pub mod spectre;

pub use corpus::{attack_corpus, CorpusProgram};
pub use litmus::{
    coherence_attack_leaks, filter_timing_attack_leaks, icache_attack_leaks,
    inclusion_attack_leaks, prefetch_attack_leaks,
};
pub use spectre::{spectre_prime_probe, SpectreOutcome};

/// Summary outcome of one attack attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOutcome {
    /// Name of the attack (matches the paper's numbering).
    pub attack: String,
    /// The configuration that was attacked.
    pub defense: String,
    /// Whether the attacker was able to extract the information.
    pub leaked: bool,
    /// Free-form detail (recovered values, latencies) for reports.
    pub detail: String,
}

impl AttackOutcome {
    /// Creates an outcome record.
    pub fn new(
        attack: impl Into<String>,
        defense: impl Into<String>,
        leaked: bool,
        detail: impl Into<String>,
    ) -> Self {
        AttackOutcome {
            attack: attack.into(),
            defense: defense.into(),
            leaked,
            detail: detail.into(),
        }
    }
}

impl simkit::json::ToJson for AttackOutcome {
    fn to_json(&self) -> simkit::json::Json {
        use simkit::json::Json;
        Json::obj([
            ("attack", Json::Str(self.attack.clone())),
            ("defense", Json::Str(self.defense.clone())),
            ("leaked", Json::Bool(self.leaked)),
            ("detail", Json::Str(self.detail.clone())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_constructor_populates_fields() {
        let o = AttackOutcome::new("attack 1", "muontrap", false, "no leak");
        assert_eq!(o.attack, "attack 1");
        assert_eq!(o.defense, "muontrap");
        assert!(!o.leaked);
    }

    #[test]
    fn outcome_serialises_to_json() {
        use simkit::json::{Json, ToJson};
        let json = AttackOutcome::new("attack 1", "muontrap", false, "no leak").to_json();
        assert_eq!(json.get("attack").and_then(Json::as_str), Some("attack 1"));
        assert_eq!(json.get("leaked").and_then(Json::as_bool), Some(false));
    }
}
