//! MuonTrap reproduction — facade crate.
//!
//! This crate re-exports the whole workspace so a downstream user can depend
//! on one package and reach every layer of the reproduction of *MuonTrap:
//! Preventing Cross-Domain Spectre-Like Attacks by Capturing Speculative
//! State* (Ainsworth & Jones, ISCA 2020):
//!
//! * [`simkit`] — configuration (Table 1), statistics, addresses, JSON;
//! * [`uarch_isa`] — the µISA workload substrate and functional interpreter;
//! * [`memsys`] — caches, MESI coherence, DRAM, prefetcher, TLBs;
//! * [`ooo_core`] — the out-of-order speculative core model;
//! * [`muontrap`] — the paper's contribution: speculative filter caches;
//! * [`defenses`] — the unprotected baseline, InvisiSpec and STT comparisons;
//! * [`workloads`] — SPEC-like and Parsec-like synthetic kernels;
//! * [`simsys`] — processes, scheduling and the experiment session;
//! * [`attacks`] — the six attack litmus tests.
//!
//! # Quickstart
//!
//! Experiments are grids declared on an [`ExperimentSession`]: workloads on
//! one axis, defenses on the other. The session runs every `Unprotected`
//! baseline once per workload, shares it across all columns, fans the cells
//! out over a thread pool, and returns a structured, JSON-serialisable
//! [`RunReport`]:
//!
//! ```
//! use muontrap_repro::prelude::*;
//!
//! // Two SPEC-like kernels under MuonTrap and STT, normalised to the shared
//! // unprotected baseline. Tiny scale keeps the doctest fast.
//! let report = ExperimentSession::new()
//!     .title("quickstart")
//!     .scale(Scale::Tiny)
//!     .workloads(spec_suite(Scale::Tiny).into_iter().take(2))
//!     .defenses([DefenseKind::MuonTrap, DefenseKind::SttSpectre])
//!     .config(SystemConfig::small_test())
//!     .run();
//!
//! // 2 workloads × 2 defenses, but only 2 baseline simulations.
//! assert_eq!(report.cells.len(), 4);
//! assert_eq!(report.baseline_sims, 2);
//! let slowdown = report.cell(0, 0).normalized_time; // MuonTrap, 1.0 = free
//! assert!(slowdown > 0.5 && slowdown < 2.0);
//!
//! // Machine-readable output for harnesses (also: `fig3 --json` etc.).
//! let json = report.to_json().to_string_compact();
//! assert!(json.contains("\"baseline_sims\":2"));
//! ```
//!
//! # Deprecation path
//!
//! The original free-function API ([`simsys::experiment`]: `run_workload`,
//! `normalized_time`, `normalized_times`, `with_filter_cache`,
//! `write_invalidate_rate`) is deprecated. The functions remain as thin
//! shims over the session — routed through its process-wide baseline cache,
//! so legacy call-in-a-loop patterns no longer re-simulate the baseline —
//! and will be removed once downstream code has migrated. See the
//! [`simsys::experiment`] module docs for the call-by-call migration map.

pub use attacks;
pub use defenses;
pub use memsys;
pub use muontrap;
pub use ooo_core;
pub use simkit;
pub use simsys;
pub use uarch_isa;
pub use workloads;

/// The most commonly used items, re-exported flat for convenience.
pub mod prelude {
    pub use attacks::{spectre_prime_probe, AttackOutcome};
    pub use defenses::{build_defense, DefenseKind, DefenseRegistry};
    pub use muontrap::MuonTrap;
    pub use ooo_core::{MemoryModel, OooCore, ThreadContext};
    pub use simkit::config::{ProtectionConfig, SystemConfig};
    pub use simkit::json::{FromJson, Json, ToJson};
    pub use simkit::stats::geometric_mean;
    pub use simsys::session::{CellResult, ExperimentSession, RunReport};
    pub use simsys::System;
    pub use uarch_isa::prog::ProgramBuilder;
    pub use uarch_isa::reg::Reg;
    pub use workloads::{parsec_suite, spec_suite, Scale, Workload};

    // The deprecated free-function harness stays in the prelude until every
    // downstream caller has migrated to `ExperimentSession`.
    #[allow(deprecated)]
    pub use simsys::experiment::{normalized_time, normalized_times, run_workload};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_key_types() {
        use crate::prelude::*;
        let cfg = SystemConfig::paper_default();
        assert_eq!(cfg.cores, 4);
        assert_eq!(DefenseKind::MuonTrap.label(), "muontrap");
        assert_eq!(spec_suite(Scale::Tiny).len(), 26);
        assert_eq!(
            DefenseRegistry::standard().lookup("muontrap"),
            Some(DefenseKind::MuonTrap)
        );
    }
}
