//! MuonTrap reproduction — facade crate.
//!
//! This crate re-exports the whole workspace so a downstream user can depend
//! on one package and reach every layer of the reproduction of *MuonTrap:
//! Preventing Cross-Domain Spectre-Like Attacks by Capturing Speculative
//! State* (Ainsworth & Jones, ISCA 2020):
//!
//! * [`simkit`] — configuration (Table 1), statistics, addresses, cycles;
//! * [`uarch_isa`] — the µISA workload substrate and functional interpreter;
//! * [`memsys`] — caches, MESI coherence, DRAM, prefetcher, TLBs;
//! * [`ooo_core`] — the out-of-order speculative core model;
//! * [`muontrap`] — the paper's contribution: speculative filter caches;
//! * [`defenses`] — the unprotected baseline, InvisiSpec and STT comparisons;
//! * [`workloads`] — SPEC-like and Parsec-like synthetic kernels;
//! * [`simsys`] — processes, scheduling and the experiment runner;
//! * [`attacks`] — the six attack litmus tests.
//!
//! # Quickstart
//!
//! ```
//! use muontrap_repro::prelude::*;
//!
//! // Run one SPEC-like kernel under MuonTrap, normalised to the unprotected
//! // baseline (1.0 = no slowdown). Tiny scale keeps the doctest fast.
//! let cfg = SystemConfig::small_test();
//! let workload = &spec_suite(Scale::Tiny)[0];
//! let slowdown = normalized_time(workload, DefenseKind::MuonTrap, &cfg);
//! assert!(slowdown > 0.5 && slowdown < 2.0);
//! ```

pub use attacks;
pub use defenses;
pub use memsys;
pub use muontrap;
pub use ooo_core;
pub use simkit;
pub use simsys;
pub use uarch_isa;
pub use workloads;

/// The most commonly used items, re-exported flat for convenience.
pub mod prelude {
    pub use attacks::{spectre_prime_probe, AttackOutcome};
    pub use defenses::{build_defense, DefenseKind};
    pub use muontrap::MuonTrap;
    pub use ooo_core::{MemoryModel, OooCore, ThreadContext};
    pub use simkit::config::{ProtectionConfig, SystemConfig};
    pub use simkit::stats::geometric_mean;
    pub use simsys::experiment::{normalized_time, normalized_times, run_workload};
    pub use simsys::System;
    pub use uarch_isa::prog::ProgramBuilder;
    pub use uarch_isa::reg::Reg;
    pub use workloads::{parsec_suite, spec_suite, Scale, Workload};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_key_types() {
        use crate::prelude::*;
        let cfg = SystemConfig::paper_default();
        assert_eq!(cfg.cores, 4);
        assert_eq!(DefenseKind::MuonTrap.label(), "muontrap");
        assert_eq!(spec_suite(Scale::Tiny).len(), 26);
    }
}
