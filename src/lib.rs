//! MuonTrap reproduction — facade crate.
//!
//! This crate re-exports the whole workspace so a downstream user can depend
//! on one package and reach every layer of the reproduction of *MuonTrap:
//! Preventing Cross-Domain Spectre-Like Attacks by Capturing Speculative
//! State* (Ainsworth & Jones, ISCA 2020):
//!
//! * [`simkit`] — configuration (Table 1), statistics, addresses, JSON;
//! * [`uarch_isa`] — the µISA workload substrate and functional interpreter;
//! * [`memsys`] — caches, MESI coherence, DRAM, prefetcher, TLBs;
//! * [`ooo_core`] — the out-of-order speculative core model;
//! * [`muontrap`] — the paper's contribution: speculative filter caches;
//! * [`defenses`] — the unprotected baseline, InvisiSpec and STT comparisons;
//! * [`workloads`] — SPEC-like and Parsec-like synthetic kernels;
//! * [`simsys`] — processes, scheduling, the experiment session and the
//!   content-addressed result store;
//! * [`attacks`] — the six attack litmus tests;
//! * [`reportgen`] — dependency-free SVG charts and the self-contained HTML
//!   evaluation report (`report --html report.html` regenerates every
//!   figure as one browsable page);
//! * [`obs`] — the telemetry core behind fleet observability: the metrics
//!   registry the simulator instruments, monotonic timestamps, and the
//!   text primitives of the `merge --watch` live dashboard.
//!
//! # Quickstart
//!
//! Experiments are grids declared on an
//! [`ExperimentSession`](simsys::session::ExperimentSession): workloads on
//! one axis, defenses on the other. The session runs every `Unprotected`
//! baseline once per workload, shares it across all columns, fans the cells
//! out over a thread pool, and returns a structured, JSON-serialisable
//! [`RunReport`](simsys::session::RunReport):
//!
//! ```
//! use muontrap_repro::prelude::*;
//!
//! // Two SPEC-like kernels under MuonTrap and STT, normalised to the shared
//! // unprotected baseline. Tiny scale keeps the doctest fast.
//! let report = ExperimentSession::new()
//!     .title("quickstart")
//!     .scale(Scale::Tiny)
//!     .workloads(spec_suite(Scale::Tiny).into_iter().take(2))
//!     .defenses([DefenseKind::MuonTrap, DefenseKind::SttSpectre])
//!     .config(SystemConfig::small_test())
//!     .run();
//!
//! // 2 workloads × 2 defenses, but only 2 baseline simulations.
//! assert_eq!(report.cells.len(), 4);
//! assert_eq!(report.baseline_sims, 2);
//! let slowdown = report.cell(0, 0).normalized_time; // MuonTrap, 1.0 = free
//! assert!(slowdown > 0.5 && slowdown < 2.0);
//!
//! // Machine-readable output for harnesses (also: `fig3 --json` etc.).
//! let json = report.to_json().to_string_compact();
//! assert!(json.contains("\"baseline_sims\":2"));
//! ```
//!
//! # Persistent result store
//!
//! Backing a session with [`simsys::store::ResultStore`] (via
//! `with_store(path)`, or `--store DIR` on every figure binary) persists each
//! raw simulation content-addressed on a fingerprint of its inputs. A re-run
//! of an unchanged grid performs **zero** simulations — check
//! `RunReport::sims_executed` and the per-cell `cached` flags:
//!
//! ```
//! use muontrap_repro::prelude::*;
//! # let nanos = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().subsec_nanos();
//! # let dir = std::env::temp_dir().join(format!("muontrap-doc-{}-{nanos}", std::process::id()));
//! let grid = || ExperimentSession::new()
//!     .workloads(spec_suite(Scale::Tiny).into_iter().take(1))
//!     .defenses([DefenseKind::MuonTrap])
//!     .config(SystemConfig::small_test())
//!     .with_store(&dir);
//! let cold = grid().run();
//! let warm = grid().run();
//! assert!(cold.sims_executed > 0);
//! assert_eq!(warm.sims_executed, 0); // every cell was a store hit
//! assert_eq!(warm.cache_hit_rate(), 1.0);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! The original free-function API (`simsys::experiment`) has been removed;
//! grids go through [`ExperimentSession`](simsys::session::ExperimentSession)
//! and single raw runs through [`simsys::session::simulate`].

#![forbid(unsafe_code)]

pub use attacks;
pub use defenses;
pub use memsys;
pub use muontrap;
pub use obs;
pub use ooo_core;
pub use reportgen;
pub use simkit;
pub use simsys;
pub use uarch_isa;
pub use workloads;

/// The most commonly used items, re-exported flat for convenience.
pub mod prelude {
    pub use attacks::{spectre_prime_probe, AttackOutcome};
    pub use defenses::{build_defense, DefenseKind, DefenseRegistry};
    pub use muontrap::MuonTrap;
    pub use ooo_core::{MemoryModel, OooCore, ThreadContext};
    pub use reportgen::{HtmlDocument, ReportFigure, SummaryTable};
    pub use simkit::config::{ProtectionConfig, SystemConfig};
    pub use simkit::json::{FromJson, Json, ToJson};
    pub use simkit::stats::geometric_mean;
    pub use simsys::runner::{merge_events, RunEvent, ShardOptions, ShardSummary};
    pub use simsys::session::{
        simulate, CellResult, ExperimentResult, ExperimentSession, RunReport,
    };
    pub use simsys::store::ResultStore;
    pub use simsys::System;
    pub use uarch_isa::prog::ProgramBuilder;
    pub use uarch_isa::reg::Reg;
    pub use workloads::{domain_switch_suite, parsec_suite, spec_suite, Scale, Workload};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_key_types() {
        use crate::prelude::*;
        let cfg = SystemConfig::paper_default();
        assert_eq!(cfg.cores, 4);
        assert_eq!(DefenseKind::MuonTrap.label(), "muontrap");
        assert_eq!(spec_suite(Scale::Tiny).len(), 26);
        assert_eq!(
            DefenseRegistry::standard().lookup("muontrap"),
            Some(DefenseKind::MuonTrap)
        );
    }
}
